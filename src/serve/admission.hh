/**
 * @file
 * Admission control for the serving layer.
 *
 * At every request arrival the driver consults a pluggable admission
 * policy before submitting the request's DAG. Three policies:
 *
 *  - admit-all:  every request enters the system (the open-loop
 *    baseline; tail latency grows without bound past saturation).
 *  - queue-cap:  load shedding — a request is Shed when the number of
 *    requests already in the system has reached the cap. Bounds
 *    time-in-system at the cost of shed work.
 *  - laxity:     predictive rejection — a request is Rejected when its
 *    predicted completion (now + backlog/parallelism + its own
 *    critical path) exceeds its absolute deadline, i.e. when its
 *    laxity at arrival is already negative. Sheds exactly the work
 *    that would have missed anyway.
 *
 * Shed and Rejected requests are tracked distinctly from deadline
 * misses in the SLO accounting (serve/slo.hh).
 */

#ifndef RELIEF_SERVE_ADMISSION_HH
#define RELIEF_SERVE_ADMISSION_HH

#include <memory>
#include <string>

#include "dag/dag.hh"
#include "serve/request.hh"

namespace relief
{

enum class AdmissionKind
{
    AdmitAll,
    QueueCap,
    Laxity,
};

const char *admissionKindName(AdmissionKind kind);
AdmissionKind admissionFromName(const std::string &name);

/** Knobs for makeAdmissionPolicy(). */
struct AdmissionConfig
{
    AdmissionKind kind = AdmissionKind::AdmitAll;
    /** queue-cap: maximum requests in the system before shedding. */
    int queueCap = 64;
    /** laxity: safety factor on the predicted queueing delay (> 1
     *  rejects earlier, < 1 later). */
    double laxityMargin = 1.0;
};

/** System snapshot handed to the policy at each arrival. */
struct AdmissionContext
{
    Tick now = 0;
    /** Requests admitted and not yet finished. */
    int inSystem = 0;
    /** Sum of the critical-path runtimes of in-system requests that
     *  have not finished (an optimistic remaining-work estimate). */
    Tick backlog = 0;
    /** Accelerator instances available to drain the backlog. */
    int parallelism = 1;
};

class AdmissionPolicy
{
  public:
    virtual ~AdmissionPolicy() = default;
    virtual AdmissionKind kind() const = 0;
    const char *name() const { return admissionKindName(kind()); }

    /** Decide @p request's fate; @p dag is its (finalized) DAG. */
    virtual AdmissionVerdict decide(const ServeRequest &request,
                                    const Dag &dag,
                                    const AdmissionContext &ctx) = 0;
};

std::unique_ptr<AdmissionPolicy>
makeAdmissionPolicy(const AdmissionConfig &config);

} // namespace relief

#endif // RELIEF_SERVE_ADMISSION_HH
