#include "serve/server.hh"

#include <algorithm>
#include <utility>

#include "core/experiment.hh"
#include "core/rng.hh"
#include "dag/apps/apps.hh"
#include "kernels/scratch.hh"
#include "sim/logging.hh"
#include "stats/json.hh"
#include "stats/table.hh"

namespace relief
{

namespace
{

/** Build one request's DAG with its QoS-scaled relative deadline.
 *  The scale must be applied before finalize(): per-node deadlines
 *  for every scheme derive from the DAG deadline. */
DagPtr
buildRequestDag(AppId app, const AppConfig &config, double deadline_scale)
{
    DagPtr dag;
    switch (app) {
      case AppId::Canny:
        dag = buildCanny(config);
        break;
      case AppId::Deblur:
        dag = buildDeblur(config);
        break;
      case AppId::Gru:
        dag = buildGru(config);
        break;
      case AppId::Harris:
        dag = buildHarris(config);
        break;
      case AppId::Lstm:
        dag = buildLstm(config);
        break;
    }
    RELIEF_ASSERT(dag != nullptr, "builder returned no DAG");
    dag->setRelativeDeadline(
        Tick(double(appDeadline(app)) * deadline_scale + 0.5));
    dag->finalize();
    return dag;
}

} // namespace

ServeDriver::ServeDriver(const ServeConfig &config) : config_(config)
{
    if (config_.horizon == 0)
        fatal("serving horizon must be positive");
    if (config_.classes.empty())
        fatal("serving needs at least one QoS class");

    // Fresh ids per run: reports become a pure function of the config
    // and seed, identical on any parallelFor worker (see dag.hh).
    resetNodeIds();
    resetKernelScratch(); // likewise for the kernels.scratch_* stats
    // Serve classes register with the pressure ledger as QoS ids 1..N,
    // after its implicit "default" class 0 (untagged traffic, spills).
    config_.soc.qosClassNames.clear();
    for (const QosClassConfig &cls : config_.classes)
        config_.soc.qosClassNames.push_back(cls.name);
    soc_ = std::make_unique<Soc>(config_.soc);
    admission_ = makeAdmissionPolicy(config_.admission);
    schedule_ = generateArrivals(config_.arrival, config_.classes,
                                 config_.horizon,
                                 deriveSeed(config_.seed, 0));
    requests_.resize(schedule_.size());
    dags_.resize(schedule_.size());

    parallelism_ = 0;
    for (int n : config_.soc.instances)
        parallelism_ += n;
    if (parallelism_ < 1)
        parallelism_ = 1;

    slo_.resize(config_.classes.size());
    for (std::size_t i = 0; i < config_.classes.size(); ++i)
        slo_[i].name = config_.classes[i].name;
    total_.name = "total";

    perClassInSystem_.assign(config_.classes.size(), 0);

    soc_->manager().setDagCompletionHandler(
        [this](Dag *dag) { onComplete(dag); });

    // Telemetry services re-arm only while real serving work remains
    // (arrivals still scheduled or requests in flight). The default
    // "events pending" liveness would deadlock the shutdown: any two
    // periodic services would keep each other's wakeups alive forever.
    const ServeTelemetryConfig &telemetry = config_.telemetry;
    auto alive = [this] {
        return arrivalsSeen_ < schedule_.size() || inSystem_ > 0;
    };
    if (telemetry.perfetto) {
        soc_->enableTracing(telemetry.samplePeriod);
        if (IntervalSampler *sampler = soc_->sampler()) {
            sampler->setLiveness(alive);
            sampler->addProbe("serve.in_flight",
                              [this] { return double(inSystem_); });
            for (std::size_t i = 0; i < config_.classes.size(); ++i) {
                const std::string &name = config_.classes[i].name;
                sampler->addProbe("serve." + name + ".in_system",
                                  [this, i] {
                                      return double(perClassInSystem_[i]);
                                  });
                sampler->addProbe("serve." + name + ".shed",
                                  [this, i] {
                                      return double(slo_[i].shed +
                                                    slo_[i].rejected);
                                  });
            }
        }
    }
    if (telemetry.traceRequests) {
        TailSamplerConfig sc;
        sc.okFraction = telemetry.okFraction;
        sc.seed = deriveSeed(config_.seed, 1);
        sampler_ = std::make_unique<TailSampler>(sc);
        soc_->manager().setDagAttributionHandler(
            [this](Dag *dag, const DagLatencyRecord &record) {
                onAttributed(dag, record);
            });
    }
    if (!telemetry.exposition.path.empty()) {
        exposition_ = std::make_unique<StatExposition>(
            soc_->sim(), soc_->stats(), telemetry.exposition);
        exposition_->setLiveness(alive);
    }
    if (telemetry.alerts) {
        alerts_ = std::make_unique<BurnRateAlerts>(
            soc_->sim(), telemetry.burnRate, &slo_);
        alerts_->setLiveness(alive);
    }

    // After the telemetry objects exist, so their stats register too.
    registerStats();
}

ServeDriver::~ServeDriver() = default;

void
ServeDriver::registerStats()
{
    StatRegistry &stats = soc_->stats();
    auto add_class = [&stats, this](const std::string &prefix,
                                    const ClassSlo &slo) {
        stats.addCounter(prefix + ".offered", "requests generated",
                         [&slo] { return slo.offered; });
        stats.addCounter(prefix + ".admitted", "requests admitted",
                         [&slo] { return slo.admitted; });
        stats.addCounter(prefix + ".shed",
                         "requests dropped by load shedding",
                         [&slo] { return slo.shed; });
        stats.addCounter(prefix + ".rejected",
                         "requests dropped as predicted infeasible",
                         [&slo] { return slo.rejected; });
        stats.addCounter(prefix + ".completed",
                         "requests finished within the horizon",
                         [&slo] { return slo.completed; });
        stats.addCounter(prefix + ".missed",
                         "completions past their deadline",
                         [&slo] { return slo.missed; });
        stats.addCounter(prefix + ".in_flight",
                         "requests still executing at the horizon",
                         [&slo] { return slo.inFlight; });
        stats.addFormula(prefix + ".goodput_rps",
                         "deadline-meeting completions per second",
                         [&slo, this] {
                             return slo.goodputRps(config_.horizon);
                         });
        stats.addFormula(prefix + ".miss_rate", "missed / completed",
                         [&slo] { return slo.missRate(); });
        stats.addFormula(prefix + ".shed_rate",
                         "(shed + rejected) / offered",
                         [&slo] { return slo.shedRate(); });
        stats.addHistogram(prefix + ".latency_ms",
                           "end-to-end request latency (ms)",
                           &slo.latencyMs);
        stats.addHistogram(prefix + ".time_in_system_ms",
                           "request time in system (ms)",
                           &slo.timeInSystemMs);
    };
    add_class("serve", total_);
    for (std::size_t i = 0; i < slo_.size(); ++i)
        add_class("serve." + slo_[i].name, slo_[i]);

    if (sampler_) {
        const TailSampleSummary &s = sampler_->summary();
        stats.addCounter("serve.trace.kept_ok",
                         "sampled-in OK request traces",
                         [&s] { return s.keptOk; });
        stats.addCounter("serve.trace.kept_miss",
                         "kept SLO-miss / in-flight traces",
                         [&s] { return s.keptMiss; });
        stats.addCounter("serve.trace.kept_shed", "kept shed traces",
                         [&s] { return s.keptShed; });
        stats.addCounter("serve.trace.kept_rejected",
                         "kept rejected traces",
                         [&s] { return s.keptRejected; });
        stats.addCounter("serve.trace.dropped",
                         "sampled-out OK request traces",
                         [&s] { return s.dropped; });
    }
    if (alerts_) {
        for (std::size_t i = 0; i < slo_.size(); ++i) {
            const std::string prefix = "serve." + slo_[i].name;
            stats.addCounter(prefix + ".alert_opens",
                             "burn-rate alert openings",
                             [a = alerts_.get(), i] {
                                 return double(a->summary()[i].opens);
                             });
            stats.addCounter(prefix + ".alert_closes",
                             "burn-rate alert closings",
                             [a = alerts_.get(), i] {
                                 return double(a->summary()[i].closes);
                             });
            stats.addScalar(prefix + ".alert_active",
                            "burn-rate alert currently open",
                            [a = alerts_.get(), i] {
                                return a->summary()[i].active ? 1.0
                                                              : 0.0;
                            });
        }
    }
    if (exposition_) {
        stats.addCounter("serve.telemetry.snapshots",
                         "exposition snapshots published",
                         [e = exposition_.get()] {
                             return double(e->numSnapshots());
                         });
    }
}

void
ServeDriver::onArrival(std::size_t index)
{
    ++arrivalsSeen_;
    const ArrivalEvent &event = schedule_[index];
    const QosClassConfig &cls =
        config_.classes[std::size_t(event.qosClass)];

    ServeRequest &request = requests_[index];
    request.id = index;
    request.qosClass = event.qosClass;
    request.app = event.app;
    request.arrival = event.time;

    DagPtr dag =
        buildRequestDag(event.app, config_.app, cls.deadlineScale);
    request.relDeadline = dag->relativeDeadline();

    AdmissionContext ctx;
    ctx.now = soc_->sim().now();
    ctx.inSystem = inSystem_;
    ctx.backlog = backlog_;
    ctx.parallelism = parallelism_;
    request.verdict = admission_->decide(request, *dag, ctx);

    ClassSlo &slo = slo_[std::size_t(event.qosClass)];
    slo.offered += 1;
    total_.offered += 1;
    switch (request.verdict) {
      case AdmissionVerdict::Shed:
        slo.shed += 1;
        total_.shed += 1;
        recordDropTrace(request, RequestOutcome::Shed);
        return; // DAG is discarded
      case AdmissionVerdict::Rejected:
        slo.rejected += 1;
        total_.rejected += 1;
        recordDropTrace(request, RequestOutcome::Rejected);
        return;
      case AdmissionVerdict::Admitted:
        break;
    }

    slo.admitted += 1;
    total_.admitted += 1;
    inSystem_ += 1;
    perClassInSystem_[std::size_t(event.qosClass)] += 1;
    backlog_ += dag->criticalPathRuntime();
    // Span-context id 0 means "untraced"; request ids start at 0, so
    // the context is the id shifted up by one. The ledger QoS id is
    // likewise the class index shifted past the implicit "default".
    dag->setSpanContext(std::uint64_t(index) + 1);
    dag->setQosClass(int(event.qosClass) + 1);
    dags_[index] = dag;
    byDag_[dag.get()] = index;
    soc_->manager().submitDag(dag.get(), soc_->sim().now());
}

/** Shed / rejected requests never execute: keep a root-only trace
 *  (finish == arrival) when the sampler says so. */
void
ServeDriver::recordDropTrace(const ServeRequest &request,
                             RequestOutcome outcome)
{
    if (!sampler_ || !sampler_->keep(request.id, outcome))
        return;
    // Context id + 1 even though no DAG ever carried it: every kept
    // trace gets its own async track in the Perfetto export.
    kept_.push_back(beginRequestTrace(
        request.id, request.id + 1,
        config_.classes[std::size_t(request.qosClass)].name,
        appName(request.app), outcome, request.arrival, request.arrival,
        request.absoluteDeadline()));
}

/**
 * Attribution hook: the critical-path record still holds its node
 * pointers, so this is the one moment the request's span tree can be
 * assembled from lifecycle stamps. Runs before the completion
 * handler.
 */
void
ServeDriver::onAttributed(Dag *dag, const DagLatencyRecord &record)
{
    auto found = byDag_.find(dag);
    RELIEF_ASSERT(found != byDag_.end(),
                  "attribution for unknown request DAG ", dag->name());
    const ServeRequest &request = requests_[found->second];
    RequestOutcome outcome =
        record.finish > request.absoluteDeadline() ? RequestOutcome::Miss
                                                   : RequestOutcome::Ok;
    if (!sampler_->keep(request.id, outcome))
        return;

    RequestTrace trace = beginRequestTrace(
        request.id, dag->spanContext(),
        config_.classes[std::size_t(request.qosClass)].name,
        appName(request.app), outcome, request.arrival, record.finish,
        request.absoluteDeadline());
    trace.buckets.queueWait = record.buckets.queueWait;
    trace.buckets.managerOverhead = record.buckets.managerOverhead;
    trace.buckets.dmaIn = record.buckets.dmaIn;
    trace.buckets.compute = record.buckets.compute;
    trace.buckets.dmaOut = record.buckets.dmaOut;
    trace.buckets.depStall = record.buckets.depStall;

    // The analyzer's path is sink-first; span sources are root-first.
    std::vector<SpanSource> path;
    path.reserve(record.path.size());
    for (auto it = record.path.rbegin(); it != record.path.rend(); ++it)
        path.push_back({(*it)->label, (*it)->lifecycle});
    addCriticalPathSpans(trace, path);
    kept_.push_back(std::move(trace));
}

void
ServeDriver::onComplete(Dag *dag)
{
    auto found = byDag_.find(dag);
    RELIEF_ASSERT(found != byDag_.end(),
                  "completion for unknown request DAG ", dag->name());
    ServeRequest &request = requests_[found->second];
    RELIEF_ASSERT(!request.finished, "request ", request.id,
                  " completed twice");
    request.finished = true;
    request.finish = dag->finishTick();

    inSystem_ -= 1;
    perClassInSystem_[std::size_t(request.qosClass)] -= 1;
    backlog_ -= dag->criticalPathRuntime();

    double latency_ms = toMs(request.finish - request.arrival);
    ClassSlo &slo = slo_[std::size_t(request.qosClass)];
    for (ClassSlo *s : {&slo, &total_}) {
        s->completed += 1;
        if (request.finish > request.absoluteDeadline())
            s->missed += 1;
        s->latencyMs.sample(latency_ms);
        s->timeInSystemMs.sample(latency_ms);
    }
}

ServeReport
ServeDriver::run()
{
    RELIEF_ASSERT(!ran_, "ServeDriver::run is single-shot");
    ran_ = true;

    for (std::size_t i = 0; i < schedule_.size(); ++i) {
        soc_->sim().at(schedule_[i].time, HostCat::Serve,
                       [this, i] { onArrival(i); }, "serve.arrival");
    }
    if (exposition_)
        exposition_->start();
    if (alerts_)
        alerts_->start();
    soc_->run(config_.horizon);

    // Requests still executing at the horizon: counted as in-flight
    // (neither completed nor missed) and sampled into time-in-system
    // at their observed residence so saturation shows up in the tail.
    for (const ServeRequest &request : requests_) {
        if (request.verdict != AdmissionVerdict::Admitted ||
            request.finished) {
            continue;
        }
        double resident_ms = toMs(config_.horizon - request.arrival);
        ClassSlo &slo = slo_[std::size_t(request.qosClass)];
        for (ClassSlo *s : {&slo, &total_}) {
            s->inFlight += 1;
            s->timeInSystemMs.sample(resident_ms);
        }
        // In-flight requests never reach the attribution hook; keep a
        // root-only trace truncated at the horizon (always kept:
        // in-flight is anomalous).
        if (sampler_ &&
            sampler_->keep(request.id, RequestOutcome::InFlight)) {
            kept_.push_back(beginRequestTrace(
                request.id, request.id + 1,
                config_.classes[std::size_t(request.qosClass)].name,
                appName(request.app), RequestOutcome::InFlight,
                request.arrival, config_.horizon,
                request.absoluteDeadline()));
        }
    }

    if (alerts_)
        alerts_->finish(soc_->sim().now());
    if (exposition_)
        exposition_->snapshotNow();

    if (sampler_) {
        // Completion order already is deterministic, but id order makes
        // the exported documents easy to diff and to validate.
        std::sort(kept_.begin(), kept_.end(),
                  [](const RequestTrace &a, const RequestTrace &b) {
                      return a.id < b.id;
                  });
        if (TraceRecorder *trace = soc_->trace()) {
            for (const RequestTrace &kept : kept_)
                emitAsyncSlices(*trace, kept);
        }
    }

    ServeReport report;
    report.horizon = config_.horizon;
    report.classes = slo_;
    report.total = total_;
    report.soc = soc_->report();
    if (sampler_)
        report.sampling = sampler_->summary();
    if (alerts_) {
        report.alerts = alerts_->summary();
        report.alertEvents = alerts_->events();
    }
    const PressureLedger &ledger = soc_->pressureLedger();
    report.pressure.reserve(std::size_t(ledger.numQosClasses()));
    for (int qos = 0; qos < ledger.numQosClasses(); ++qos)
        report.pressure.push_back(
            {ledger.qosClassName(qos), ledger.qosTotal(qos)});
    return report;
}

void
printSloTable(std::ostream &os, const ServeReport &report,
              const std::string &title)
{
    Table table(title);
    table.setHeader({"class", "offered", "admit", "shed", "reject",
                     "done", "miss", "inflight", "goodput_rps",
                     "miss%", "shed%", "p50_ms", "p95_ms", "p99_ms"});
    auto row = [&](const ClassSlo &slo) {
        table.addRow({slo.name, std::to_string(slo.offered),
                      std::to_string(slo.admitted),
                      std::to_string(slo.shed),
                      std::to_string(slo.rejected),
                      std::to_string(slo.completed),
                      std::to_string(slo.missed),
                      std::to_string(slo.inFlight),
                      Table::num(slo.goodputRps(report.horizon), 1),
                      Table::num(slo.missRate() * 100.0, 1),
                      Table::num(slo.shedRate() * 100.0, 1),
                      Table::num(slo.latencyMs.quantile(0.50), 2),
                      Table::num(slo.latencyMs.quantile(0.95), 2),
                      Table::num(slo.latencyMs.quantile(0.99), 2)});
    };
    for (const ClassSlo &slo : report.classes)
        row(slo);
    row(report.total);
    table.emit(os);
}

void
writeServeRunJson(std::ostream &os, const ServeReport &report,
                  const std::string &policy, const std::string &admission,
                  const std::string &arrival, double offered_load,
                  double rate_rps, int indent)
{
    const std::string pad(std::size_t(indent), ' ');
    os << "{\n"
       << pad << "  \"policy\": \"" << jsonEscape(policy) << "\",\n"
       << pad << "  \"admission\": \"" << jsonEscape(admission)
       << "\",\n"
       << pad << "  \"arrival\": \"" << jsonEscape(arrival) << "\",\n"
       << pad << "  \"offered_load\": " << jsonNumber(offered_load)
       << ",\n"
       << pad << "  \"rate_rps\": " << jsonNumber(rate_rps) << ",\n"
       << pad << "  \"total\": ";
    writeClassSloJson(os, report.total, report.horizon, indent + 2);
    os << ",\n" << pad << "  \"classes\": [";
    bool first = true;
    for (const ClassSlo &slo : report.classes) {
        os << (first ? "\n" : ",\n") << pad << "    ";
        writeClassSloJson(os, slo, report.horizon, indent + 4);
        first = false;
    }
    os << "\n" << pad << "  ],\n" << pad << "  \"pressure\": [";
    first = true;
    for (const ServeReport::QosPressure &qos : report.pressure) {
        os << (first ? "\n" : ",\n") << pad << "    {\"class\": \""
           << jsonEscape(qos.name) << "\", \"bytes\": " << qos.slot.bytes
           << ", \"transfers\": " << qos.slot.transfers
           << ", \"service_us\": " << jsonNumber(toUs(qos.slot.serviceTicks))
           << ", \"wait_suffered_us\": "
           << jsonNumber(toUs(qos.slot.waitSuffered))
           << ", \"wait_caused_us\": "
           << jsonNumber(toUs(qos.slot.waitCaused)) << "}";
        first = false;
    }
    os << "\n" << pad << "  ],\n" << pad << "  \"alerts\": ";
    writeAlertsJson(os, report.alerts, report.alertEvents, indent + 2);
    os << "\n" << pad << "}";
}

double
measureCapacityRps(const SocConfig &soc, const AppConfig &app)
{
    ExperimentConfig config;
    config.soc = soc;
    config.soc.policy = PolicyKind::Fcfs;
    config.mix = "CDGHL";
    config.continuous = true;
    config.timeLimit = continuousWindow;
    config.app = app;
    MetricsReport report = runExperiment(config);
    double seconds = double(config.timeLimit) / double(tickPerSec);
    double capacity = double(report.run.dagsFinished) / seconds;
    RELIEF_ASSERT(capacity > 0.0, "capacity calibration finished no DAGs");
    return capacity;
}

} // namespace relief
