/**
 * @file
 * Request-level types for the online serving layer (src/serve).
 *
 * A request is one client-issued execution of a paper application
 * (Table V) arriving at a stochastic time. Requests belong to a QoS
 * class that fixes their relative deadline (a multiple of the app's
 * Table V deadline) and their priority for reporting and admission.
 * The serving driver turns each admitted request into a fresh DAG and
 * submits it to the hardware manager at its arrival tick.
 */

#ifndef RELIEF_SERVE_REQUEST_HH
#define RELIEF_SERVE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dag/apps/apps.hh"
#include "sim/ticks.hh"

namespace relief
{

/** One QoS class: which request types it covers and how they are
 *  treated. */
struct QosClassConfig
{
    std::string name;         ///< Stable label ("realtime", ...).
    std::vector<AppId> apps;  ///< Request types drawn by this class.
    double weight = 1.0;      ///< Share of the arrival stream.
    /** Relative deadline = deadlineScale x appDeadline(app). */
    double deadlineScale = 1.0;
    /** Smaller = more important (reporting / shedding order). */
    int priority = 0;
};

/**
 * The default three-class mix used by the tools and benches:
 * RNN inference is latency-critical, vision is interactive, and deblur
 * runs as batch work with a relaxed (3x) deadline.
 */
std::vector<QosClassConfig> defaultQosClasses();

/** Admission outcome of one request. */
enum class AdmissionVerdict : std::uint8_t
{
    Admitted, ///< Submitted to the manager.
    Shed,     ///< Dropped by load shedding (queue cap).
    Rejected, ///< Dropped by laxity-based infeasibility prediction.
};

const char *admissionVerdictName(AdmissionVerdict verdict);

/** Lifecycle record of one request (owned by the serving driver). */
struct ServeRequest
{
    std::uint64_t id = 0;   ///< Arrival-order index.
    int qosClass = 0;       ///< Index into the class table.
    AppId app = AppId::Canny;
    Tick arrival = 0;       ///< Arrival (= submission) tick.
    Tick relDeadline = 0;   ///< Scaled relative deadline.
    AdmissionVerdict verdict = AdmissionVerdict::Admitted;
    bool finished = false;
    Tick finish = 0;        ///< Completion tick (when finished).

    Tick absoluteDeadline() const { return arrival + relDeadline; }
};

} // namespace relief

#endif // RELIEF_SERVE_REQUEST_HH
