/**
 * @file
 * Tail-based sampling of request traces.
 *
 * Production tracing systems cannot keep every trace, but the boring
 * ones are interchangeable and the anomalous ones are priceless —
 * tail-based sampling decides *after* the outcome is known: keep 100%
 * of SLO-miss / shed / rejected / still-in-flight requests, and a
 * deterministic fraction of OK requests.
 *
 * The keep decision for OK traces is a pure function of
 * (sampler seed, request id) through core/rng.hh deriveSeed — never of
 * completion order or worker count — so a serving run keeps a
 * bit-identical trace set across `--jobs` values, the same contract
 * the bench sweeps rely on.
 *
 * Counter conservation (validated by scripts/check_bench_schema.py on
 * relief-trace-v1 documents):
 *
 *     kept_ok + kept_miss + dropped == admitted
 *     admitted + kept_shed + kept_rejected == offered
 *
 * where kept_miss counts every kept *anomalous admitted* request
 * (deadline misses and requests still in flight at the horizon).
 */

#ifndef RELIEF_TRACE_SAMPLER_HH
#define RELIEF_TRACE_SAMPLER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "trace/span.hh"

namespace relief
{

struct TailSamplerConfig
{
    /** Fraction of OK traces kept, in [0, 1]. */
    double okFraction = 0.0;
    /** Seed of the keep-decision stream (derive from the run seed). */
    std::uint64_t seed = 1;
};

/** Keep counters of one run (all relief-trace-v1 "sampling" fields). */
struct TailSampleSummary
{
    std::uint64_t offered = 0;      ///< Requests presented.
    std::uint64_t admitted = 0;     ///< Admitted (ok/miss/in-flight).
    std::uint64_t keptOk = 0;       ///< Sampled-in OK traces.
    std::uint64_t keptMiss = 0;     ///< Kept misses + in-flight.
    std::uint64_t keptShed = 0;     ///< Kept shed traces (100%).
    std::uint64_t keptRejected = 0; ///< Kept rejected traces (100%).
    std::uint64_t dropped = 0;      ///< Sampled-out OK traces.

    std::uint64_t
    kept() const
    {
        return keptOk + keptMiss + keptShed + keptRejected;
    }
};

class TailSampler
{
  public:
    explicit TailSampler(const TailSamplerConfig &config);

    /**
     * Decide whether request @p id with @p outcome is kept, updating
     * the counters. Anomalous outcomes are always kept; Ok is kept
     * when sampled(seed, id, okFraction). Call exactly once per
     * request.
     */
    bool keep(std::uint64_t id, RequestOutcome outcome);

    /**
     * The deterministic OK-keep decision: derive a per-request uniform
     * variate from (seed, id) and compare against @p fraction. Pure
     * function — independent of call order and worker count.
     */
    static bool sampled(std::uint64_t seed, std::uint64_t id,
                        double fraction);

    double okFraction() const { return config_.okFraction; }
    const TailSampleSummary &summary() const { return summary_; }

  private:
    TailSamplerConfig config_;
    TailSampleSummary summary_;
};

/**
 * Write a complete relief-trace-v1 document: run identity, the
 * sampling counters, and one record per kept request (sorted by id by
 * the caller for stable output).
 */
void writeTraceDocJson(std::ostream &os,
                       const std::vector<RequestTrace> &traces,
                       const TailSampleSummary &sampling,
                       double ok_fraction, std::uint64_t seed,
                       double horizon_ms);

} // namespace relief

#endif // RELIEF_TRACE_SAMPLER_HH
