/**
 * @file
 * Request-scoped span trees for the serving layer.
 *
 * Each admitted request owns one span tree: a root `request` span
 * covering [arrival, finish], an `admission` child covering host-side
 * submission processing, one `node` child per critical-path DAG node
 * (the nodes CriticalPath::analyze walked), and under each node span
 * the four phase children `queue_wait` / `dispatch` / `dma_in` /
 * `compute` that partition it exactly. Asynchronous write-backs appear
 * as `dma_out` children of the root, clamped to the request window —
 * they overlap successor node spans by design (the paper's
 * asynchronous write-back rule made visible).
 *
 * Span trees are assembled once, at request completion, from the
 * NodeLifecycle stamps the hardware manager already records — nothing
 * is allocated on the per-event hot path. The serving driver threads
 * the request identity through HardwareManager as a span-context id
 * on the DAG (dag/dag.hh spanContext()), which becomes the Perfetto
 * async-track id when kept traces are exported.
 *
 * Invariants (tested in tests/trace/span_test.cc and validated by
 * scripts/check_bench_schema.py on relief-trace-v1 documents):
 *  - every span nests within its parent's [start, end] window,
 *  - a node span's four phase children sum to the node span exactly,
 *  - the root's synchronous children (admission + node spans) are
 *    disjoint, so their durations sum to at most the root duration
 *    (within one tick).
 */

#ifndef RELIEF_TRACE_SPAN_HH
#define RELIEF_TRACE_SPAN_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dag/node.hh"
#include "sim/ticks.hh"

namespace relief
{

class TraceRecorder;

/** What one span in a request's tree represents. */
enum class SpanKind : std::uint8_t
{
    Request,   ///< Root: the whole request, [arrival, finish].
    Admission, ///< Host-side submission processing.
    Node,      ///< One critical-path DAG node, [queued, computeEnd].
    QueueWait, ///< Ready-queue residency (queued -> dispatched).
    Dispatch,  ///< Launch + SPM stall (dispatched -> loadStart).
    DmaIn,     ///< Operand loading (loadStart -> loadEnd).
    Compute,   ///< Functional-unit execution (loadEnd -> computeEnd).
    DmaOut,    ///< Asynchronous write-back (wbStart -> wbEnd).
};

/** Stable lower-case name ("request", "queue_wait", ...). */
const char *spanKindName(SpanKind kind);

/** How one request left the system (the tail sampler keeps 100% of
 *  everything that is not Ok). */
enum class RequestOutcome : std::uint8_t
{
    Ok,       ///< Completed within its deadline.
    Miss,     ///< Completed past its deadline.
    Shed,     ///< Dropped by load shedding.
    Rejected, ///< Dropped as predicted infeasible.
    InFlight, ///< Still executing at the horizon.
};

/** Stable lower-case name ("ok", "miss", ...). */
const char *requestOutcomeName(RequestOutcome outcome);

/** Everything except Ok is anomalous and always kept. */
bool requestOutcomeAnomalous(RequestOutcome outcome);

/** One span in a request's tree. */
struct RequestSpan
{
    SpanKind kind = SpanKind::Request;
    int parent = -1;   ///< Index into RequestTrace::spans; root: -1.
    std::string label; ///< Node label for Node spans, else empty.
    Tick start = 0;
    Tick end = 0;

    Tick duration() const { return end - start; }
};

/** Label + lifecycle stamps of one critical-path node, root-first. */
struct SpanSource
{
    std::string label;
    NodeLifecycle lifecycle;
};

/** Six-bucket latency attribution copied from the critical-path
 *  analyzer (mirrors manager/critical_path.hh LatencyBreakdown, kept
 *  value-only here so the trace layer stays below the manager). */
struct SpanBuckets
{
    Tick queueWait = 0;
    Tick managerOverhead = 0;
    Tick dmaIn = 0;
    Tick compute = 0;
    Tick dmaOut = 0;
    Tick depStall = 0;

    Tick
    total() const
    {
        return queueWait + managerOverhead + dmaIn + compute + dmaOut +
               depStall;
    }
};

/** One kept request: identity, outcome, and its span tree. Parents
 *  always precede children in `spans`; spans[0] is the root. */
struct RequestTrace
{
    std::uint64_t id = 0;      ///< Request id (arrival order).
    std::uint64_t context = 0; ///< Span-context id (async-track id).
    std::string qosClass;
    std::string app;
    RequestOutcome outcome = RequestOutcome::Ok;
    Tick arrival = 0;
    Tick finish = 0;   ///< Completion; horizon for in-flight;
                       ///< arrival for shed/rejected.
    Tick deadline = 0; ///< Absolute deadline.
    SpanBuckets buckets;
    std::vector<RequestSpan> spans;

    Tick latency() const { return finish - arrival; }
};

/**
 * Start a request trace with just the root span [arrival, finish].
 * Shed / rejected / in-flight requests stay root-only; completed
 * requests get their tree from addCriticalPathSpans().
 */
RequestTrace beginRequestTrace(std::uint64_t id, std::uint64_t context,
                               std::string qos_class, std::string app,
                               RequestOutcome outcome, Tick arrival,
                               Tick finish, Tick deadline);

/**
 * Append the admission span, one node span (with its four phase
 * children) per critical-path node in @p path (root-first), and one
 * clamped dma_out root child per write-back. Requires a root span.
 */
void addCriticalPathSpans(RequestTrace &trace,
                          const std::vector<SpanSource> &path);

/**
 * Emit @p trace as Perfetto async ("b"/"e") events on the recorder:
 * the synchronous tree on async id 2*context, write-backs on
 * 2*context+1, both under category "request". Events are appended in
 * properly nested order, which writeChromeJson preserves at equal
 * timestamps.
 */
void emitAsyncSlices(TraceRecorder &trace, const RequestTrace &request);

/** Write one relief-trace-v1 request record at @p indent spaces. */
void writeRequestTraceJson(std::ostream &os, const RequestTrace &trace,
                           int indent);

} // namespace relief

#endif // RELIEF_TRACE_SPAN_HH
