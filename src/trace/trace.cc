#include "trace/trace.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

TraceRecorder::TraceRecorder()
{
    // Spans, samples, and flows are recorded on the per-event hot path
    // (every launch, every sampler wakeup, every satisfied DAG edge);
    // seed the vectors so early growth never reallocates mid-run.
    spans_.reserve(1024);
    samples_.reserve(4096);
    flows_.reserve(1024);
}

int
TraceRecorder::lane(const std::string &name)
{
    auto it = laneIds_.find(name);
    if (it != laneIds_.end())
        return it->second;
    int id = int(laneNames_.size());
    laneNames_.push_back(name);
    laneIds_.emplace(name, id);
    return id;
}

void
TraceRecorder::span(int lane_id, std::string name, Tick start, Tick end,
                    std::string category)
{
    RELIEF_ASSERT(lane_id >= 0 && lane_id < numLanes(),
                  "trace span on unknown lane ", lane_id);
    if (end <= start)
        return;
    TraceSpan s;
    s.lane = lane_id;
    s.name = std::move(name);
    s.category = std::move(category);
    s.start = start;
    s.end = end;
    spans_.push_back(std::move(s));
}

const std::string &
TraceRecorder::laneName(int lane_id) const
{
    RELIEF_ASSERT(lane_id >= 0 && lane_id < numLanes(),
                  "unknown trace lane ", lane_id);
    return laneNames_[std::size_t(lane_id)];
}

int
TraceRecorder::counterTrack(const std::string &name)
{
    auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    int id = int(trackNames_.size());
    trackNames_.push_back(name);
    trackIds_.emplace(name, id);
    return id;
}

void
TraceRecorder::counter(int track_id, Tick when, double value)
{
    RELIEF_ASSERT(track_id >= 0 && track_id < numCounterTracks(),
                  "counter sample on unknown track ", track_id);
    CounterSample s;
    s.track = track_id;
    s.when = when;
    s.value = value;
    samples_.push_back(s);
}

const std::string &
TraceRecorder::counterTrackName(int track_id) const
{
    RELIEF_ASSERT(track_id >= 0 && track_id < numCounterTracks(),
                  "unknown counter track ", track_id);
    return trackNames_[std::size_t(track_id)];
}

int
TraceRecorder::flow(std::string name, std::string category, int src_lane,
                    Tick src_time, int dst_lane, Tick dst_time)
{
    RELIEF_ASSERT(src_lane >= 0 && src_lane < numLanes(),
                  "trace flow from unknown lane ", src_lane);
    RELIEF_ASSERT(dst_lane >= 0 && dst_lane < numLanes(),
                  "trace flow to unknown lane ", dst_lane);
    TraceFlow f;
    f.id = nextFlowId_++;
    f.name = std::move(name);
    f.category = std::move(category);
    f.srcLane = src_lane;
    f.srcTime = src_time;
    f.dstLane = dst_lane;
    f.dstTime = std::max(dst_time, src_time);
    flows_.push_back(std::move(f));
    return flows_.back().id;
}

void
TraceRecorder::asyncEvent(std::uint64_t id, std::string name,
                          std::string category, Tick ts, bool begin)
{
    AsyncEvent e;
    e.id = id;
    e.name = std::move(name);
    e.category = std::move(category);
    e.ts = ts;
    e.begin = begin;
    asyncEvents_.push_back(std::move(e));
}

Tick
TraceRecorder::horizon() const
{
    Tick h = 0;
    for (const TraceSpan &s : spans_)
        h = std::max(h, s.end);
    // A counter-only trace (spans disabled or none recorded yet) must
    // still report how far in time it reaches, or Gantt rendering and
    // window clipping see an empty recording.
    for (const CounterSample &s : samples_)
        h = std::max(h, s.when);
    for (const TraceFlow &f : flows_)
        h = std::max(h, f.dstTime);
    for (const AsyncEvent &e : asyncEvents_)
        h = std::max(h, e.ts);
    return h;
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    // One entry per emitted event, sortable by timestamp. Flows
    // contribute two entries ("s" at the source, "f" at the
    // destination); `half` orders a zero-length flow's start before
    // its finish, which chrome://tracing requires to bind the arrow.
    struct Ref
    {
        Tick ts;
        int kind; ///< 0 span, 1 counter, 2 flow, 3 async half.
        int half; ///< Flows: 0 = "s", 1 = "f".
        std::size_t index;
    };
    std::vector<Ref> refs;
    refs.reserve(spans_.size() + samples_.size() + 2 * flows_.size() +
                 asyncEvents_.size());
    for (std::size_t i = 0; i < spans_.size(); ++i)
        refs.push_back({spans_[i].start, 0, 0, i});
    for (std::size_t i = 0; i < samples_.size(); ++i)
        refs.push_back({samples_[i].when, 1, 0, i});
    for (std::size_t i = 0; i < flows_.size(); ++i) {
        refs.push_back({flows_[i].srcTime, 2, 0, i});
        refs.push_back({flows_[i].dstTime, 2, 1, i});
    }
    for (std::size_t i = 0; i < asyncEvents_.size(); ++i)
        refs.push_back({asyncEvents_[i].ts, 3, 0, i});
    // Stability keeps a zero-length flow's "s" (inserted first) ahead
    // of its "f" at equal timestamps, which chrome://tracing requires
    // to bind the arrow — and keeps async halves in the properly
    // nested order their emitter appended them in.
    std::stable_sort(refs.begin(), refs.end(),
                     [](const Ref &a, const Ref &b) {
                         return a.ts < b.ts;
                     });

    os << "[\n";
    bool first = true;
    for (int lane_id = 0; lane_id < numLanes(); ++lane_id) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << lane_id << ",\"args\":{\"name\":\""
           << jsonEscape(laneNames_[std::size_t(lane_id)]) << "\"}}";
    }
    for (const Ref &ref : refs) {
        if (!first)
            os << ",\n";
        first = false;
        switch (ref.kind) {
          case 0: {
            const TraceSpan &s = spans_[ref.index];
            os << "  {\"name\":\"" << jsonEscape(s.name)
               << "\",\"cat\":\"" << jsonEscape(s.category)
               << "\",\"ph\":\"X\",\"ts\":" << toUs(s.start)
               << ",\"dur\":" << toUs(s.end - s.start)
               << ",\"pid\":1,\"tid\":" << s.lane << "}";
            break;
          }
          case 1: {
            // Perfetto groups "C" events by name and renders each as a
            // line chart keyed on args.value.
            const CounterSample &s = samples_[ref.index];
            os << "  {\"name\":\""
               << jsonEscape(trackNames_[std::size_t(s.track)])
               << "\",\"ph\":\"C\",\"ts\":" << toUs(s.when)
               << ",\"pid\":1,\"args\":{\"value\":"
               << jsonNumber(s.value) << "}}";
            break;
          }
          case 2: {
            const TraceFlow &f = flows_[ref.index];
            if (ref.half == 0) {
                os << "  {\"name\":\"" << jsonEscape(f.name)
                   << "\",\"cat\":\"" << jsonEscape(f.category)
                   << "\",\"ph\":\"s\",\"id\":" << f.id
                   << ",\"ts\":" << toUs(f.srcTime)
                   << ",\"pid\":1,\"tid\":" << f.srcLane << "}";
            } else {
                // bp:"e" binds the arrowhead to the enclosing slice
                // rather than the next slice on the destination lane.
                os << "  {\"name\":\"" << jsonEscape(f.name)
                   << "\",\"cat\":\"" << jsonEscape(f.category)
                   << "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << f.id
                   << ",\"ts\":" << toUs(f.dstTime)
                   << ",\"pid\":1,\"tid\":" << f.dstLane << "}";
            }
            break;
          }
          case 3: {
            // Async ("b"/"e") halves; Perfetto groups them into one
            // async track per (cat, id) and nests by emit order.
            const AsyncEvent &e = asyncEvents_[ref.index];
            os << "  {\"name\":\"" << jsonEscape(e.name)
               << "\",\"cat\":\"" << jsonEscape(e.category)
               << "\",\"ph\":\"" << (e.begin ? 'b' : 'e')
               << "\",\"id\":" << e.id << ",\"ts\":" << toUs(e.ts)
               << ",\"pid\":1,\"tid\":0}";
            break;
          }
        }
    }
    os << "\n]\n";
}

void
TraceRecorder::writeGantt(std::ostream &os, Tick from, Tick to,
                          int width) const
{
    RELIEF_ASSERT(width >= 1, "gantt width must be positive");
    if (to == maxTick)
        to = horizon();
    if (to <= from)
        return;
    Tick bucket = (to - from + Tick(width) - 1) / Tick(width);
    if (bucket == 0)
        bucket = 1;

    std::size_t label_width = 4;
    for (const std::string &name : laneNames_)
        label_width = std::max(label_width, name.size());

    os << std::string(label_width, ' ') << " |" << " [" << toUs(from)
       << " us .. " << toUs(to) << " us, "
       << toUs(bucket) << " us/char]\n";

    for (int lane_id = 0; lane_id < numLanes(); ++lane_id) {
        std::string row(std::size_t(width), '.');
        for (const TraceSpan &s : spans_) {
            if (s.lane != lane_id || s.end <= from || s.start >= to)
                continue;
            Tick s0 = std::max(s.start, from);
            Tick s1 = std::min(s.end, to);
            auto b0 = std::size_t((s0 - from) / bucket);
            auto b1 = std::size_t((s1 - from - 1) / bucket);
            char mark = s.name.empty() ? '#' : s.name[0];
            for (std::size_t b = b0; b <= b1 && b < row.size(); ++b)
                row[b] = mark;
        }
        const std::string &name = laneNames_[std::size_t(lane_id)];
        os << name << std::string(label_width - name.size(), ' ')
           << " |" << row << "\n";
    }
}

void
TraceRecorder::clear()
{
    spans_.clear();
    samples_.clear();
    flows_.clear();
    asyncEvents_.clear();
}

} // namespace relief
