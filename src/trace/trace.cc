#include "trace/trace.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

int
TraceRecorder::lane(const std::string &name)
{
    auto it = laneIds_.find(name);
    if (it != laneIds_.end())
        return it->second;
    int id = int(laneNames_.size());
    laneNames_.push_back(name);
    laneIds_.emplace(name, id);
    return id;
}

void
TraceRecorder::span(int lane_id, std::string name, Tick start, Tick end,
                    std::string category)
{
    RELIEF_ASSERT(lane_id >= 0 && lane_id < numLanes(),
                  "trace span on unknown lane ", lane_id);
    if (end <= start)
        return;
    TraceSpan s;
    s.lane = lane_id;
    s.name = std::move(name);
    s.category = std::move(category);
    s.start = start;
    s.end = end;
    spans_.push_back(std::move(s));
}

const std::string &
TraceRecorder::laneName(int lane_id) const
{
    RELIEF_ASSERT(lane_id >= 0 && lane_id < numLanes(),
                  "unknown trace lane ", lane_id);
    return laneNames_[std::size_t(lane_id)];
}

int
TraceRecorder::counterTrack(const std::string &name)
{
    auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    int id = int(trackNames_.size());
    trackNames_.push_back(name);
    trackIds_.emplace(name, id);
    return id;
}

void
TraceRecorder::counter(int track_id, Tick when, double value)
{
    RELIEF_ASSERT(track_id >= 0 && track_id < numCounterTracks(),
                  "counter sample on unknown track ", track_id);
    CounterSample s;
    s.track = track_id;
    s.when = when;
    s.value = value;
    samples_.push_back(s);
}

const std::string &
TraceRecorder::counterTrackName(int track_id) const
{
    RELIEF_ASSERT(track_id >= 0 && track_id < numCounterTracks(),
                  "unknown counter track ", track_id);
    return trackNames_[std::size_t(track_id)];
}

Tick
TraceRecorder::horizon() const
{
    Tick h = 0;
    for (const TraceSpan &s : spans_)
        h = std::max(h, s.end);
    return h;
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    os << "[\n";
    bool first = true;
    for (int lane_id = 0; lane_id < numLanes(); ++lane_id) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << lane_id << ",\"args\":{\"name\":\""
           << jsonEscape(laneNames_[std::size_t(lane_id)]) << "\"}}";
    }
    for (const TraceSpan &s : spans_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\":\"" << jsonEscape(s.name) << "\",\"cat\":\""
           << jsonEscape(s.category) << "\",\"ph\":\"X\",\"ts\":"
           << toUs(s.start) << ",\"dur\":" << toUs(s.end - s.start)
           << ",\"pid\":1,\"tid\":" << s.lane << "}";
    }
    // Counter tracks: Perfetto groups "C" events by name and renders
    // each as a line chart keyed on args.value.
    for (const CounterSample &s : samples_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\":\""
           << jsonEscape(trackNames_[std::size_t(s.track)])
           << "\",\"ph\":\"C\",\"ts\":" << toUs(s.when)
           << ",\"pid\":1,\"args\":{\"value\":" << jsonNumber(s.value)
           << "}}";
    }
    os << "\n]\n";
}

void
TraceRecorder::writeGantt(std::ostream &os, Tick from, Tick to,
                          int width) const
{
    RELIEF_ASSERT(width >= 1, "gantt width must be positive");
    if (to == maxTick)
        to = horizon();
    if (to <= from)
        return;
    Tick bucket = (to - from + Tick(width) - 1) / Tick(width);
    if (bucket == 0)
        bucket = 1;

    std::size_t label_width = 4;
    for (const std::string &name : laneNames_)
        label_width = std::max(label_width, name.size());

    os << std::string(label_width, ' ') << " |" << " [" << toUs(from)
       << " us .. " << toUs(to) << " us, "
       << toUs(bucket) << " us/char]\n";

    for (int lane_id = 0; lane_id < numLanes(); ++lane_id) {
        std::string row(std::size_t(width), '.');
        for (const TraceSpan &s : spans_) {
            if (s.lane != lane_id || s.end <= from || s.start >= to)
                continue;
            Tick s0 = std::max(s.start, from);
            Tick s1 = std::min(s.end, to);
            auto b0 = std::size_t((s0 - from) / bucket);
            auto b1 = std::size_t((s1 - from - 1) / bucket);
            char mark = s.name.empty() ? '#' : s.name[0];
            for (std::size_t b = b0; b <= b1 && b < row.size(); ++b)
                row[b] = mark;
        }
        const std::string &name = laneNames_[std::size_t(lane_id)];
        os << name << std::string(label_width - name.size(), ' ')
           << " |" << row << "\n";
    }
}

void
TraceRecorder::clear()
{
    spans_.clear();
    samples_.clear();
}

} // namespace relief
