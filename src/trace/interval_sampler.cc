#include "trace/interval_sampler.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

IntervalSampler::IntervalSampler(Simulator &sim, TraceRecorder &trace,
                                 Tick period)
    : SimObject(sim, "sampler"), trace_(trace), period_(period)
{
    RELIEF_ASSERT(period_ > 0, "sampler period must be positive");
}

void
IntervalSampler::addProbe(const std::string &track_name, Probe probe)
{
    RELIEF_ASSERT(probe != nullptr,
                  "probe '", track_name, "' needs a callable");
    probes_.emplace_back(trace_.counterTrack(track_name),
                         std::move(probe));
}

void
IntervalSampler::setLiveness(std::function<bool()> alive)
{
    alive_ = std::move(alive);
}

void
IntervalSampler::start()
{
    if (pending_.pending())
        return;
    sampleOnce();
}

void
IntervalSampler::stop()
{
    pending_.cancel();
}

void
IntervalSampler::sampleOnce()
{
    for (const auto &[track, probe] : probes_)
        trace_.counter(track, now(), probe());
    // Re-arm only while the model still has work in flight; otherwise
    // the sampler would keep an idle event queue spinning forever.
    bool alive = alive_ ? alive_() : !sim().events().empty();
    if (alive)
        pending_ = sim().after(period_, HostCat::Stats,
                               [this] { sampleOnce(); },
                               "sampler.tick");
}

} // namespace relief
