/**
 * @file
 * Live telemetry: periodic Prometheus text exposition of the stat
 * registry.
 *
 * A StatExposition wakes up every `period` sim-ticks, renders every
 * registered stat in Prometheus text exposition format, and publishes
 * the snapshot atomically (write to `<path>.tmp`, then rename onto
 * `<path>`), so an external scraper polling the file never observes a
 * torn write. With `series` enabled each snapshot is also kept as
 * `<path>.<index>` so a run's full history can be inspected (CI uses
 * this to check counter monotonicity across snapshots).
 *
 * Each snapshot carries, besides the cumulative registry values:
 *  - `relief_exposition_snapshots` / `relief_exposition_sim_time_ms`
 *    metadata,
 *  - one delta-window rate gauge `<counter>_per_sec` per counter —
 *    (current - previous snapshot) / window seconds — so rates are
 *    readable without a scraper-side derivative,
 *  - histogram summaries (`_count`, `_sum`, and p50/p95/p99
 *    quantiles).
 *
 * Like the IntervalSampler, the publisher only re-arms while the model
 * is alive; the liveness predicate is injectable so the serving driver
 * can key it on real work (arrivals pending or requests in flight)
 * rather than raw event-queue occupancy — two periodic services using
 * the queue-occupancy default would keep each other alive forever.
 *
 * Rendered snapshots are retained in memory (snapshots()) so tests and
 * the report path can inspect them without touching the filesystem;
 * pass an empty path to disable file publishing entirely.
 */

#ifndef RELIEF_TRACE_EXPOSITION_HH
#define RELIEF_TRACE_EXPOSITION_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "stats/registry.hh"

namespace relief
{

struct ExpositionConfig
{
    /** Snapshot file path; empty keeps snapshots in memory only. */
    std::string path;
    /** Snapshot period in ticks (must be positive). */
    Tick period = fromMs(5.0);
    /** Metric-name prefix (sanitized stat names are appended). */
    std::string prefix = "relief";
    /** Also write every snapshot as `<path>.<index>`. */
    bool series = false;
};

class StatExposition : public SimObject
{
  public:
    /**
     * @param sim    Owning simulation context.
     * @param stats  Registry to render (must outlive the publisher).
     * @param config Snapshot knobs.
     */
    StatExposition(Simulator &sim, const StatRegistry &stats,
                   ExpositionConfig config);

    /** Re-arm while this returns true (default: events pending). */
    void setLiveness(std::function<bool()> alive);

    /** Take the first snapshot now and begin periodic publishing. */
    void start();

    /** Cancel the pending wakeup; start() re-arms. */
    void stop();

    /** Take one extra snapshot at the current tick (end-of-run state;
     *  also published to the file). */
    void snapshotNow();

    std::size_t numSnapshots() const { return snapshots_.size(); }

    /** Every rendered snapshot, in publication order. */
    const std::vector<std::string> &snapshots() const
    {
        return snapshots_;
    }

    const ExpositionConfig &config() const { return config_; }

    /**
     * Sanitize one dotted stat name into a Prometheus metric name:
     * every character outside [a-zA-Z0-9_:] becomes '_'
     * ("serve.realtime.miss_rate" -> "serve_realtime_miss_rate").
     */
    static std::string sanitizeName(const std::string &name);

  private:
    void tick();
    void publish();
    std::string render();
    void writeFile(const std::string &text);

    const StatRegistry &stats_;
    ExpositionConfig config_;
    std::function<bool()> alive_;
    EventHandle pending_;
    std::vector<std::string> snapshots_;
    /** Previous snapshot's counter values (delta-window rates). */
    std::map<std::string, double> prevValues_;
    Tick prevTick_ = 0;
};

} // namespace relief

#endif // RELIEF_TRACE_EXPOSITION_HH
