#include "trace/sampler.hh"
#include "sim/build_info.hh"

#include "core/rng.hh"
#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

TailSampler::TailSampler(const TailSamplerConfig &config)
    : config_(config)
{
    RELIEF_ASSERT(config_.okFraction >= 0.0 && config_.okFraction <= 1.0,
                  "OK-trace sampling fraction must be in [0, 1], got ",
                  config_.okFraction);
}

bool
TailSampler::sampled(std::uint64_t seed, std::uint64_t id,
                     double fraction)
{
    if (fraction >= 1.0)
        return true;
    // 53-bit uniform in [0, 1), same construction as Xoshiro::uniform.
    double u = double(deriveSeed(seed, id) >> 11) * 0x1.0p-53;
    return u < fraction;
}

bool
TailSampler::keep(std::uint64_t id, RequestOutcome outcome)
{
    summary_.offered += 1;
    switch (outcome) {
      case RequestOutcome::Shed:
        summary_.keptShed += 1;
        return true;
      case RequestOutcome::Rejected:
        summary_.keptRejected += 1;
        return true;
      case RequestOutcome::Miss:
      case RequestOutcome::InFlight:
        summary_.admitted += 1;
        summary_.keptMiss += 1;
        return true;
      case RequestOutcome::Ok:
        break;
    }
    summary_.admitted += 1;
    if (sampled(config_.seed, id, config_.okFraction)) {
        summary_.keptOk += 1;
        return true;
    }
    summary_.dropped += 1;
    return false;
}

void
writeTraceDocJson(std::ostream &os,
                  const std::vector<RequestTrace> &traces,
                  const TailSampleSummary &sampling, double ok_fraction,
                  std::uint64_t seed, double horizon_ms)
{
    os << "{\n  \"schema\": \"relief-trace-v1\",\n"
       << "  \"build_info\": ";
    writeBuildInfoJson(os, 2);
    os << ",\n"
       << "  \"seed\": " << seed << ",\n"
       << "  \"horizon_ms\": " << jsonNumber(horizon_ms) << ",\n"
       << "  \"ok_fraction\": " << jsonNumber(ok_fraction) << ",\n"
       << "  \"sampling\": {\"offered\": " << sampling.offered
       << ", \"admitted\": " << sampling.admitted
       << ", \"kept_ok\": " << sampling.keptOk
       << ", \"kept_miss\": " << sampling.keptMiss
       << ", \"kept_shed\": " << sampling.keptShed
       << ", \"kept_rejected\": " << sampling.keptRejected
       << ", \"dropped\": " << sampling.dropped << "},\n"
       << "  \"requests\": [";
    bool first = true;
    for (const RequestTrace &trace : traces) {
        os << (first ? "\n    " : ",\n    ");
        writeRequestTraceJson(os, trace, 4);
        first = false;
    }
    os << "\n  ]\n}\n";
}

} // namespace relief
