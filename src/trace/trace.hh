/**
 * @file
 * Schedule tracing.
 *
 * A TraceRecorder collects labeled time spans on named lanes (one lane
 * per accelerator, DMA direction, or the manager) and renders them
 * either as Chrome trace-event JSON (load into chrome://tracing or
 * Perfetto) or as an ASCII Gantt chart for terminals. The hardware
 * manager emits load/compute/write-back/scheduler spans when a
 * recorder is attached (Soc::enableTracing()).
 *
 * Alongside spans, the recorder collects *counter tracks*: named
 * time-series sampled by the IntervalSampler (ready-queue depth, DRAM
 * bandwidth utilization, outstanding DMA bytes, accelerator
 * occupancy). They are rendered as Chrome "C" events, which Perfetto
 * draws as per-name line charts under the span lanes — one load shows
 * both the schedule and the memory pressure it causes.
 *
 * The third primitive is the *flow event*: a directed arrow from a
 * point on one lane to a point on another, rendered by Perfetto as a
 * curve connecting the two enclosing slices. The hardware manager
 * emits one flow per satisfied DAG edge — producer completion (or
 * write-back) to consumer input load — categorized by how the operand
 * moved ("forward", "colocation", "dram"), so a trace visually shows
 * which data movement the scheduler elided.
 */

#ifndef RELIEF_TRACE_TRACE_HH
#define RELIEF_TRACE_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/ticks.hh"

namespace relief
{

/** One traced activity. */
struct TraceSpan
{
    int lane = 0;
    std::string name;
    std::string category;
    Tick start = 0;
    Tick end = 0;
};

/** One sample on a counter track. */
struct CounterSample
{
    int track = 0;
    Tick when = 0;
    double value = 0.0;
};

/**
 * One half of a Perfetto async slice ("b" begin / "e" end). Async
 * events with the same (category, id) share one async track; Perfetto
 * nests them by begin/end order, so emitters must append the halves
 * in properly nested sequence (see trace/span.cc emitAsyncSlices).
 */
struct AsyncEvent
{
    std::uint64_t id = 0; ///< Async-track id (span-context derived).
    std::string name;
    std::string category;
    Tick ts = 0;
    bool begin = true; ///< true = "b", false = "e".
};

/** One directed arrow between two lane/time points (a DAG edge). */
struct TraceFlow
{
    int id = 0; ///< Pairs the "s" and "f" halves in the JSON.
    std::string name;
    std::string category;
    int srcLane = 0;
    Tick srcTime = 0;
    int dstLane = 0;
    Tick dstTime = 0;
};

class TraceRecorder
{
  public:
    TraceRecorder();

    /** Get or create the lane named @p name; returns its id. Lane ids
     *  are dense and ordered by first use. */
    int lane(const std::string &name);

    /** Record the half-open span [start, end) on @p lane_id. */
    void span(int lane_id, std::string name, Tick start, Tick end,
              std::string category = "task");

    std::size_t numSpans() const { return spans_.size(); }
    const std::vector<TraceSpan> &spans() const { return spans_; }
    int numLanes() const { return int(laneNames_.size()); }
    const std::string &laneName(int lane_id) const;

    /** Get or create the counter track named @p name; returns its id.
     *  Track ids are dense and ordered by first use, independent of
     *  lane ids. */
    int counterTrack(const std::string &name);

    /** Record @p value on @p track_id at time @p when. */
    void counter(int track_id, Tick when, double value);

    int numCounterTracks() const { return int(trackNames_.size()); }
    const std::string &counterTrackName(int track_id) const;
    std::size_t numCounterSamples() const { return samples_.size(); }
    const std::vector<CounterSample> &counterSamples() const
    {
        return samples_;
    }

    /**
     * Record an arrow from (@p src_lane, @p src_time) to
     * (@p dst_lane, @p dst_time); returns the flow id that pairs the
     * two halves in the Chrome JSON. Arrows pointing backwards in time
     * are clamped to zero length at the destination.
     */
    int flow(std::string name, std::string category, int src_lane,
             Tick src_time, int dst_lane, Tick dst_time);

    std::size_t numFlows() const { return flows_.size(); }
    const std::vector<TraceFlow> &flows() const { return flows_; }

    /**
     * Append one async ("b"/"e") event half on async track @p id.
     * Halves are rendered in insertion order at equal timestamps, so
     * the caller controls nesting by appending a properly nested
     * sequence (begin parent, begin child, end child, end parent).
     */
    void asyncEvent(std::uint64_t id, std::string name,
                    std::string category, Tick ts, bool begin);

    std::size_t numAsyncEvents() const { return asyncEvents_.size(); }
    const std::vector<AsyncEvent> &asyncEvents() const
    {
        return asyncEvents_;
    }

    /** Latest time across all spans, counter samples, flows, and
     *  async events. */
    Tick horizon() const;

    /**
     * Chrome trace-event JSON: lane metadata first, then every event —
     * complete ("X") spans, counter ("C") samples, flow ("s"/"f")
     * pairs, and async ("b"/"e") halves — sorted by timestamp.
     * Perfetto tolerates unsorted input, but chrome://tracing
     * misrenders flows whose "s" half appears after its "f" half, so
     * the sort (stable, "s" before "f" and async halves in insertion
     * order at equal timestamps) is a documented guarantee of this
     * writer.
     */
    void writeChromeJson(std::ostream &os) const;

    /**
     * ASCII Gantt chart: one row per lane, @p width character buckets
     * covering [from, to). Each bucket shows the first letter of the
     * span occupying it ('.' when idle).
     */
    void writeGantt(std::ostream &os, Tick from = 0, Tick to = maxTick,
                    int width = 100) const;

    void clear();

  private:
    std::vector<std::string> laneNames_;
    std::unordered_map<std::string, int> laneIds_;
    std::vector<TraceSpan> spans_;
    std::vector<std::string> trackNames_;
    std::unordered_map<std::string, int> trackIds_;
    std::vector<CounterSample> samples_;
    std::vector<TraceFlow> flows_;
    std::vector<AsyncEvent> asyncEvents_;
    int nextFlowId_ = 1;
};

} // namespace relief

#endif // RELIEF_TRACE_TRACE_HH
