/**
 * @file
 * Schedule tracing.
 *
 * A TraceRecorder collects labeled time spans on named lanes (one lane
 * per accelerator, DMA direction, or the manager) and renders them
 * either as Chrome trace-event JSON (load into chrome://tracing or
 * Perfetto) or as an ASCII Gantt chart for terminals. The hardware
 * manager emits load/compute/write-back/scheduler spans when a
 * recorder is attached (Soc::enableTracing()).
 */

#ifndef RELIEF_TRACE_TRACE_HH
#define RELIEF_TRACE_TRACE_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace relief
{

/** One traced activity. */
struct TraceSpan
{
    int lane = 0;
    std::string name;
    std::string category;
    Tick start = 0;
    Tick end = 0;
};

class TraceRecorder
{
  public:
    /** Get or create the lane named @p name; returns its id. Lane ids
     *  are dense and ordered by first use. */
    int lane(const std::string &name);

    /** Record the half-open span [start, end) on @p lane_id. */
    void span(int lane_id, std::string name, Tick start, Tick end,
              std::string category = "task");

    std::size_t numSpans() const { return spans_.size(); }
    const std::vector<TraceSpan> &spans() const { return spans_; }
    int numLanes() const { return int(laneNames_.size()); }
    const std::string &laneName(int lane_id) const;

    /** Latest end time across all spans. */
    Tick horizon() const;

    /** Chrome trace-event JSON (complete events + lane metadata). */
    void writeChromeJson(std::ostream &os) const;

    /**
     * ASCII Gantt chart: one row per lane, @p width character buckets
     * covering [from, to). Each bucket shows the first letter of the
     * span occupying it ('.' when idle).
     */
    void writeGantt(std::ostream &os, Tick from = 0, Tick to = maxTick,
                    int width = 100) const;

    void clear();

  private:
    std::vector<std::string> laneNames_;
    std::map<std::string, int> laneIds_;
    std::vector<TraceSpan> spans_;
};

} // namespace relief

#endif // RELIEF_TRACE_TRACE_HH
