#include "trace/exposition.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

namespace
{

/** Prometheus sample value: deterministic formatting, and Prometheus
 *  spells non-finite values NaN/+Inf/-Inf (JSON null is invalid). */
std::string
promNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    return jsonNumber(value);
}

} // namespace

StatExposition::StatExposition(Simulator &sim, const StatRegistry &stats,
                               ExpositionConfig config)
    : SimObject(sim, "exposition"), stats_(stats),
      config_(std::move(config))
{
    RELIEF_ASSERT(config_.period > 0,
                  "exposition period must be positive");
    RELIEF_ASSERT(!config_.prefix.empty(),
                  "exposition prefix must not be empty");
}

void
StatExposition::setLiveness(std::function<bool()> alive)
{
    alive_ = std::move(alive);
}

std::string
StatExposition::sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    return out;
}

void
StatExposition::start()
{
    if (pending_.pending())
        return;
    tick();
}

void
StatExposition::tick()
{
    publish();
    // Same liveness discipline as the IntervalSampler: re-arm only
    // while the model is alive, or an idle event queue spins forever.
    bool alive = alive_ ? alive_() : !sim().events().empty();
    if (alive)
        pending_ = sim().after(config_.period, HostCat::Stats,
                               [this] { tick(); },
                               "exposition.tick");
}

void
StatExposition::stop()
{
    pending_.cancel();
}

void
StatExposition::snapshotNow()
{
    publish();
}

void
StatExposition::publish()
{
    std::string text = render();
    writeFile(text);
    snapshots_.push_back(std::move(text));
    prevTick_ = now();
}

std::string
StatExposition::render()
{
    const std::size_t index = snapshots_.size();
    const double window_s =
        double(now() - prevTick_) / double(tickPerSec);
    std::ostringstream os;
    const std::string &p = config_.prefix;

    os << "# " << p << " exposition snapshot " << index << " at "
       << promNumber(toMs(now())) << " sim ms\n";
    os << "# TYPE " << p << "_exposition_snapshots counter\n"
       << p << "_exposition_snapshots " << (index + 1) << "\n";
    os << "# TYPE " << p << "_exposition_sim_time_ms gauge\n"
       << p << "_exposition_sim_time_ms " << promNumber(toMs(now()))
       << "\n";

    std::vector<std::pair<std::string, double>> counters;
    for (const std::string &name : stats_.names()) {
        const std::string metric = p + "_" + sanitizeName(name);
        switch (stats_.kind(name)) {
          case StatKind::Counter: {
            double value = stats_.value(name);
            os << "# TYPE " << metric << "_total counter\n"
               << metric << "_total " << promNumber(value) << "\n";
            // Delta-window rate: change since the previous snapshot
            // over the window, not a cumulative average — readable
            // without a scraper-side derivative.
            double prev = 0.0;
            auto it = prevValues_.find(name);
            if (it != prevValues_.end())
                prev = it->second;
            double rate =
                window_s > 0.0 ? (value - prev) / window_s : 0.0;
            os << "# TYPE " << metric << "_per_sec gauge\n"
               << metric << "_per_sec " << promNumber(rate) << "\n";
            counters.emplace_back(name, value);
            break;
          }
          case StatKind::Scalar:
          case StatKind::Formula:
            os << "# TYPE " << metric << " gauge\n"
               << metric << " " << promNumber(stats_.value(name))
               << "\n";
            break;
          case StatKind::Histogram: {
            const Histogram &hist = stats_.histogram(name);
            os << "# TYPE " << metric << " summary\n"
               << metric << "{quantile=\"0.5\"} "
               << promNumber(hist.quantile(0.50)) << "\n"
               << metric << "{quantile=\"0.95\"} "
               << promNumber(hist.quantile(0.95)) << "\n"
               << metric << "{quantile=\"0.99\"} "
               << promNumber(hist.quantile(0.99)) << "\n"
               << metric << "_sum "
               << promNumber(hist.mean() * double(hist.count())) << "\n"
               << metric << "_count " << hist.count() << "\n";
            break;
          }
        }
    }
    for (auto &[name, value] : counters)
        prevValues_[name] = value;
    return os.str();
}

void
StatExposition::writeFile(const std::string &text)
{
    if (config_.path.empty())
        return;
    const std::size_t index = snapshots_.size();
    const std::string tmp = config_.path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            fatal("cannot write exposition snapshot ", tmp);
        out << text;
    }
    // Atomic publish: a scraper polling config_.path sees either the
    // previous snapshot or this one, never a torn write.
    if (std::rename(tmp.c_str(), config_.path.c_str()) != 0)
        fatal("cannot rename ", tmp, " onto ", config_.path);
    if (config_.series) {
        const std::string versioned =
            config_.path + "." + std::to_string(index);
        std::ofstream out(versioned);
        if (!out)
            fatal("cannot write exposition snapshot ", versioned);
        out << text;
    }
}

} // namespace relief
