/**
 * @file
 * Periodic counter-track sampler.
 *
 * An IntervalSampler wakes up every @c period ticks and records the
 * current value of each registered probe on its counter track in the
 * attached TraceRecorder. The Soc facade wires the standard probes
 * (ready-queue depth, DRAM bandwidth utilization, outstanding DMA
 * bytes, per-accelerator occupancy) when tracing is enabled, so a
 * Chrome trace shows the memory pressure alongside the schedule.
 *
 * The sampler only re-arms itself while other events are pending, so
 * it never keeps the event queue alive on its own: a run ends at most
 * one period after the last real event.
 */

#ifndef RELIEF_TRACE_INTERVAL_SAMPLER_HH
#define RELIEF_TRACE_INTERVAL_SAMPLER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace relief
{

class IntervalSampler : public SimObject
{
  public:
    /** Reads the current value of one sampled quantity. */
    using Probe = std::function<double()>;

    /**
     * @param sim    Owning simulation context.
     * @param trace  Recorder receiving the counter samples
     *               (must outlive the sampler).
     * @param period Sampling interval in ticks (must be positive).
     */
    IntervalSampler(Simulator &sim, TraceRecorder &trace, Tick period);

    /** Register @p probe under the counter track @p track_name. */
    void addProbe(const std::string &track_name, Probe probe);

    /**
     * Re-arm while @p alive returns true instead of the default
     * "events pending" check. The serving driver keys every periodic
     * service (sampler, exposition, alerts) on real work — arrivals
     * pending or requests in flight — because two periodic services
     * using the queue-occupancy default would keep each other alive
     * forever.
     */
    void setLiveness(std::function<bool()> alive);

    std::size_t numProbes() const { return probes_.size(); }
    Tick period() const { return period_; }

    /** Take the first sample now and begin periodic sampling. */
    void start();

    /** Cancel the pending wakeup; start() re-arms. */
    void stop();

  private:
    void sampleOnce();

    TraceRecorder &trace_;
    Tick period_;
    std::vector<std::pair<int, Probe>> probes_;
    std::function<bool()> alive_;
    EventHandle pending_;
};

} // namespace relief

#endif // RELIEF_TRACE_INTERVAL_SAMPLER_HH
