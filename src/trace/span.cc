#include "trace/span.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"
#include "stats/json.hh"
#include "trace/trace.hh"

namespace relief
{

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Request:
        return "request";
      case SpanKind::Admission:
        return "admission";
      case SpanKind::Node:
        return "node";
      case SpanKind::QueueWait:
        return "queue_wait";
      case SpanKind::Dispatch:
        return "dispatch";
      case SpanKind::DmaIn:
        return "dma_in";
      case SpanKind::Compute:
        return "compute";
      case SpanKind::DmaOut:
        return "dma_out";
    }
    return "?";
}

const char *
requestOutcomeName(RequestOutcome outcome)
{
    switch (outcome) {
      case RequestOutcome::Ok:
        return "ok";
      case RequestOutcome::Miss:
        return "miss";
      case RequestOutcome::Shed:
        return "shed";
      case RequestOutcome::Rejected:
        return "rejected";
      case RequestOutcome::InFlight:
        return "in_flight";
    }
    return "?";
}

bool
requestOutcomeAnomalous(RequestOutcome outcome)
{
    return outcome != RequestOutcome::Ok;
}

RequestTrace
beginRequestTrace(std::uint64_t id, std::uint64_t context,
                  std::string qos_class, std::string app,
                  RequestOutcome outcome, Tick arrival, Tick finish,
                  Tick deadline)
{
    RELIEF_ASSERT(finish >= arrival, "request trace ends before it starts");
    RequestTrace trace;
    trace.id = id;
    trace.context = context;
    trace.qosClass = std::move(qos_class);
    trace.app = std::move(app);
    trace.outcome = outcome;
    trace.arrival = arrival;
    trace.finish = finish;
    trace.deadline = deadline;

    RequestSpan root;
    root.kind = SpanKind::Request;
    root.parent = -1;
    root.start = arrival;
    root.end = finish;
    trace.spans.push_back(std::move(root));
    return trace;
}

namespace
{

void
addSpan(RequestTrace &trace, SpanKind kind, int parent,
        std::string label, Tick start, Tick end)
{
    RequestSpan span;
    span.kind = kind;
    span.parent = parent;
    span.label = std::move(label);
    span.start = start;
    span.end = end;
    trace.spans.push_back(std::move(span));
}

} // namespace

void
addCriticalPathSpans(RequestTrace &trace,
                     const std::vector<SpanSource> &path)
{
    RELIEF_ASSERT(!trace.spans.empty(),
                  "critical-path spans need a root span first");
    if (path.empty())
        return;

    const Tick arrival = trace.arrival;
    const Tick finish = trace.finish;

    // Host-side admission: request arrival until the first
    // critical-path node (a DAG root) entered its ready queue — the
    // submission ISR plus the policy's sorted insert.
    addSpan(trace, SpanKind::Admission, 0, "", arrival,
            path.front().lifecycle.queued);

    for (const SpanSource &source : path) {
        const NodeLifecycle &lc = source.lifecycle;
        int node_index = int(trace.spans.size());
        addSpan(trace, SpanKind::Node, 0, source.label, lc.queued,
                lc.computeEnd);
        // The four phases are contiguous, so they partition the node
        // span exactly: queued -> dispatched -> loadStart -> loadEnd
        // -> computeEnd.
        addSpan(trace, SpanKind::QueueWait, node_index, "", lc.queued,
                lc.dispatched);
        addSpan(trace, SpanKind::Dispatch, node_index, "",
                lc.dispatched, lc.loadStart);
        addSpan(trace, SpanKind::DmaIn, node_index, "", lc.loadStart,
                lc.loadEnd);
        addSpan(trace, SpanKind::Compute, node_index, "", lc.loadEnd,
                lc.computeEnd);
    }

    // Asynchronous write-backs run concurrently with successor nodes;
    // attach them to the root (not the node span, which ends at
    // computeEnd) and clamp to the request window so every span still
    // nests within its parent.
    for (const SpanSource &source : path) {
        const NodeLifecycle &lc = source.lifecycle;
        if (lc.wbStart == 0 && lc.wbEnd == 0)
            continue; // Write-back elided (forwarded in SPM).
        Tick start = std::max(lc.wbStart, arrival);
        Tick end = std::min(lc.wbEnd, finish);
        if (end <= start)
            continue; // Entirely outside the request window.
        addSpan(trace, SpanKind::DmaOut, 0, source.label, start, end);
    }
}

namespace
{

/** Emit @p index and its children as a properly nested b/e sequence
 *  (children are stored after their parent and in start order, so the
 *  produced timestamps are non-decreasing). */
void
emitSubtree(TraceRecorder &trace, const RequestTrace &request,
            const std::vector<std::vector<int>> &children,
            std::uint64_t async_id, int index, const std::string &name)
{
    const RequestSpan &span = request.spans[std::size_t(index)];
    trace.asyncEvent(async_id, name, "request", span.start, true);
    for (int child : children[std::size_t(index)]) {
        const RequestSpan &c = request.spans[std::size_t(child)];
        std::string child_name =
            c.label.empty() ? spanKindName(c.kind) : c.label;
        emitSubtree(trace, request, children, async_id, child,
                    child_name);
    }
    trace.asyncEvent(async_id, name, "request", span.end, false);
}

} // namespace

void
emitAsyncSlices(TraceRecorder &trace, const RequestTrace &request)
{
    if (request.spans.empty())
        return;

    // Child lists per span, synchronous tree only; write-backs overlap
    // their successor node spans by design, so they get their own
    // async track (2*context + 1) instead of breaking the b/e nesting
    // stack of the main tree (2*context).
    std::vector<std::vector<int>> children(request.spans.size());
    std::vector<int> writebacks;
    for (std::size_t i = 1; i < request.spans.size(); ++i) {
        const RequestSpan &span = request.spans[i];
        if (span.kind == SpanKind::DmaOut)
            writebacks.push_back(int(i));
        else
            children[std::size_t(span.parent)].push_back(int(i));
    }

    std::string root_name = "request #" + std::to_string(request.id) +
                            " " + request.qosClass + "/" + request.app +
                            " [" + requestOutcomeName(request.outcome) +
                            "]";
    emitSubtree(trace, request, children, 2 * request.context, 0,
                root_name);

    for (int index : writebacks) {
        const RequestSpan &span = request.spans[std::size_t(index)];
        std::string name = "wb " + span.label;
        trace.asyncEvent(2 * request.context + 1, name, "request",
                         span.start, true);
        trace.asyncEvent(2 * request.context + 1, name, "request",
                         span.end, false);
    }
}

void
writeRequestTraceJson(std::ostream &os, const RequestTrace &trace,
                      int indent)
{
    const std::string pad(std::size_t(indent), ' ');
    os << "{\n"
       << pad << "  \"id\": " << trace.id << ",\n"
       << pad << "  \"class\": \"" << jsonEscape(trace.qosClass)
       << "\",\n"
       << pad << "  \"app\": \"" << jsonEscape(trace.app) << "\",\n"
       << pad << "  \"outcome\": \"" << requestOutcomeName(trace.outcome)
       << "\",\n"
       << pad << "  \"arrival_us\": " << jsonNumber(toUs(trace.arrival))
       << ",\n"
       << pad << "  \"finish_us\": " << jsonNumber(toUs(trace.finish))
       << ",\n"
       << pad << "  \"deadline_us\": "
       << jsonNumber(toUs(trace.deadline)) << ",\n"
       << pad << "  \"latency_us\": " << jsonNumber(toUs(trace.latency()))
       << ",\n"
       << pad << "  \"buckets_us\": {\"queue_wait\": "
       << jsonNumber(toUs(trace.buckets.queueWait)) << ", \"manager\": "
       << jsonNumber(toUs(trace.buckets.managerOverhead))
       << ", \"dma_in\": " << jsonNumber(toUs(trace.buckets.dmaIn))
       << ", \"compute\": " << jsonNumber(toUs(trace.buckets.compute))
       << ", \"dma_out\": " << jsonNumber(toUs(trace.buckets.dmaOut))
       << ", \"dep_stall\": " << jsonNumber(toUs(trace.buckets.depStall))
       << ", \"total\": " << jsonNumber(toUs(trace.buckets.total()))
       << "},\n"
       << pad << "  \"spans\": [";
    bool first = true;
    for (const RequestSpan &span : trace.spans) {
        os << (first ? "\n" : ",\n") << pad << "    {\"kind\": \""
           << spanKindName(span.kind) << "\", \"parent\": "
           << span.parent << ", \"label\": \"" << jsonEscape(span.label)
           << "\", \"start_us\": " << jsonNumber(toUs(span.start))
           << ", \"end_us\": " << jsonNumber(toUs(span.end)) << "}";
        first = false;
    }
    os << "\n" << pad << "  ]\n" << pad << "}";
}

} // namespace relief
