/**
 * @file
 * Loosely-coupled accelerator model.
 *
 * An accelerator bundles a fixed-function compute unit, a private
 * scratchpad, and a DMA engine (Fig. 3 of the paper). Task
 * orchestration — loading inputs, deciding forwards vs DRAM reads,
 * write-backs — is the hardware manager's job; the accelerator itself
 * only models compute occupancy and raises a completion callback (the
 * interrupt the manager's ISR services).
 */

#ifndef RELIEF_ACC_ACCELERATOR_HH
#define RELIEF_ACC_ACCELERATOR_HH

#include <functional>
#include <memory>
#include <string>

#include "acc/acc_types.hh"
#include "acc/compute_model.hh"
#include "dma/dma_engine.hh"
#include "mem/main_memory.hh"
#include "mem/scratchpad.hh"
#include "sim/simulator.hh"
#include "stats/interval_union.hh"

namespace relief
{

class Accelerator : public SimObject
{
  public:
    using Callback = std::function<void()>;

    /**
     * @param sim       Simulation context.
     * @param name      Debug name, e.g. "soc.convolution0".
     * @param type      Fixed-function type.
     * @param instance  Instance index among accelerators of this type.
     * @param fabric    DMA-plane interconnect.
     * @param dram_port Main memory's fabric port.
     * @param dram      Main memory.
     */
    Accelerator(Simulator &sim, std::string name, AccType type,
                int instance, Interconnect &fabric, PortId dram_port,
                MainMemory &dram, const ScratchpadConfig &spm_config,
                const DmaConfig &dma_config = {});

    AccType type() const { return type_; }
    int instance() const { return instance_; }

    Scratchpad &spm() { return *spm_; }
    const Scratchpad &spm() const { return *spm_; }
    DmaEngine &dma() { return *dma_; }
    const DmaEngine &dma() const { return *dma_; }

    /** True while a task occupies the functional unit (loading inputs
     *  or computing). */
    bool busy() const { return busy_; }

    /** Reserve the functional unit from now until release. */
    void acquire();

    /**
     * Run the functional unit for @p duration; fires @p on_done and
     * releases the unit when finished. The unit must have been
     * acquire()d (input DMA happens under acquisition).
     */
    void startCompute(Tick duration, Callback on_done);

    /** Release the functional unit without computing (error paths). */
    void release();

    /** Pure compute busy time (the Fig. 7 occupancy numerator). */
    Tick computeBusyTime(Tick upTo = maxTick) const
    {
        return computeBusy_.covered(upTo);
    }

    /** Tasks completed on this instance. */
    std::uint64_t tasksExecuted() const { return tasksExecuted_.value(); }

    void resetStats();

  private:
    AccType type_;
    int instance_;
    std::unique_ptr<Scratchpad> spm_;
    std::unique_ptr<DmaEngine> dma_;
    bool busy_ = false;
    IntervalUnion computeBusy_;
    Counter tasksExecuted_;
};

} // namespace relief

#endif // RELIEF_ACC_ACCELERATOR_HH
