#include "acc/accelerator.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

Accelerator::Accelerator(Simulator &sim, std::string name, AccType type,
                         int instance, Interconnect &fabric,
                         PortId dram_port, MainMemory &dram,
                         const ScratchpadConfig &spm_config,
                         const DmaConfig &dma_config)
    : SimObject(sim, std::move(name)), type_(type), instance_(instance),
      spm_(std::make_unique<Scratchpad>(sim, this->name() + ".spm",
                                        spm_config)),
      dma_(std::make_unique<DmaEngine>(sim, this->name() + ".dma", fabric,
                                       dram_port, dram, *spm_, dma_config))
{
}

void
Accelerator::acquire()
{
    RELIEF_ASSERT(!busy_, name(), ": acquire while busy");
    busy_ = true;
}

void
Accelerator::startCompute(Tick duration, Callback on_done)
{
    RELIEF_ASSERT(busy_, name(), ": compute without acquisition");
    Tick start = now();
    Tick end = start + duration;
    computeBusy_.add(start, end);
    sim().at(end, HostCat::Kernels,
             [this, cb = std::move(on_done)]() {
                 tasksExecuted_.add(1);
                 busy_ = false;
                 if (cb)
                     cb();
             },
             [this] { return name() + ".computeDone"; });
}

void
Accelerator::release()
{
    RELIEF_ASSERT(busy_, name(), ": release while idle");
    busy_ = false;
}

void
Accelerator::resetStats()
{
    computeBusy_.clear();
    tasksExecuted_.reset();
    spm_->resetStats();
    dma_->resetStats();
}

} // namespace relief
