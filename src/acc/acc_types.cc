#include "acc/acc_types.hh"

namespace relief
{

const char *
accTypeSymbol(AccType type)
{
    switch (type) {
      case AccType::ISP:
        return "I";
      case AccType::Grayscale:
        return "G";
      case AccType::Convolution:
        return "C";
      case AccType::ElemMatrix:
        return "EM";
      case AccType::CannyNonMax:
        return "CNM";
      case AccType::HarrisNonMax:
        return "HNM";
      case AccType::EdgeTracking:
        return "ET";
    }
    return "?";
}

const char *
accTypeName(AccType type)
{
    switch (type) {
      case AccType::ISP:
        return "ISP";
      case AccType::Grayscale:
        return "grayscale";
      case AccType::Convolution:
        return "convolution";
      case AccType::ElemMatrix:
        return "elem-matrix";
      case AccType::CannyNonMax:
        return "canny-non-max";
      case AccType::HarrisNonMax:
        return "harris-non-max";
      case AccType::EdgeTracking:
        return "edge-tracking";
    }
    return "unknown";
}

const char *
elemOpName(ElemOp op)
{
    switch (op) {
      case ElemOp::Add:
        return "add";
      case ElemOp::Sub:
        return "sub";
      case ElemOp::Mul:
        return "mul";
      case ElemOp::Div:
        return "div";
      case ElemOp::Sqr:
        return "sqr";
      case ElemOp::Sqrt:
        return "sqrt";
      case ElemOp::Atan2:
        return "atan2";
      case ElemOp::Tanh:
        return "tanh";
      case ElemOp::Sigmoid:
        return "sigmoid";
      case ElemOp::Scale:
        return "scale";
      case ElemOp::OneMinus:
        return "one-minus";
    }
    return "unknown";
}

} // namespace relief
