#include "acc/compute_model.hh"

#include "sim/logging.hh"

namespace relief
{

double
referenceComputeUs(AccType type)
{
    // Table I: per-task compute time in microseconds for 128x128 inputs.
    switch (type) {
      case AccType::ISP:
        return 34.88;
      case AccType::Grayscale:
        return 10.26;
      case AccType::Convolution:
        return 1545.61; // 5x5 filter.
      case AccType::ElemMatrix:
        return 10.94;
      case AccType::CannyNonMax:
        return 443.02;
      case AccType::HarrisNonMax:
        return 105.01;
      case AccType::EdgeTracking:
        return 324.73;
    }
    panic("unknown accelerator type");
}

Tick
computeTime(const TaskParams &params)
{
    RELIEF_ASSERT(params.elems > 0, "task with zero elements");
    double us = referenceComputeUs(params.type);
    us *= double(params.elems) / double(referenceElems);
    if (params.type == AccType::Convolution) {
        RELIEF_ASSERT(params.filterSize >= 1 && params.filterSize <= 5,
                      "convolution supports filters up to 5x5, got ",
                      params.filterSize);
        us *= double(params.filterSize * params.filterSize) / 25.0;
    }
    return fromUs(us);
}

std::uint64_t
inputBytesPerOperand(const TaskParams &params)
{
    // 32-bit elements everywhere except the ISP's 16-bit raw Bayer input.
    std::uint64_t bytes_per_elem = params.type == AccType::ISP ? 2 : 4;
    return std::uint64_t(params.elems) * bytes_per_elem;
}

std::uint64_t
outputBytes(const TaskParams &params)
{
    return std::uint64_t(params.elems) * 4;
}

std::uint64_t
defaultSpmBytes(AccType type)
{
    // Table I scratchpad sizes in bytes.
    switch (type) {
      case AccType::ISP:
        return 115204;
      case AccType::Grayscale:
        return 180224;
      case AccType::Convolution:
        return 196708;
      case AccType::ElemMatrix:
        return 262144;
      case AccType::CannyNonMax:
        return 262144;
      case AccType::HarrisNonMax:
        return 196608;
      case AccType::EdgeTracking:
        return 98432;
    }
    panic("unknown accelerator type");
}

} // namespace relief
