/**
 * @file
 * Analytic compute-time model for the fixed-function accelerators.
 *
 * The paper (Section III-B, Observation 7) exploits the fact that
 * fixed-function accelerator compute time is a data-independent function
 * of input size and requested operation, profiled once. This model is
 * that profile: per-task times calibrated to Table I for 128x128
 * (16384-element) tasks at 1 GHz, scaled linearly with element count,
 * and — for convolution — with filter area (Table I's 1545.61 us is the
 * 5x5 maximum-filter case).
 *
 * Calibration cross-check (documented in DESIGN.md): the Richardson-Lucy
 * deblur DAG built from this model sums to 15610.6 us of compute,
 * matching Table II's 15610.58 us.
 */

#ifndef RELIEF_ACC_COMPUTE_MODEL_HH
#define RELIEF_ACC_COMPUTE_MODEL_HH

#include <cstdint>

#include "acc/acc_types.hh"
#include "sim/ticks.hh"

namespace relief
{

/** Per-task operation parameters used by the timing model. */
struct TaskParams
{
    AccType type = AccType::ElemMatrix;
    std::uint32_t elems = 16384;   ///< Elements processed (128x128).
    int filterSize = 5;            ///< Convolution filter edge length.
    ElemOp op = ElemOp::Add;       ///< Elem-matrix operation.
    int numInputs = 1;             ///< Input operand count.
};

/** Reference element count the Table I profile was taken at. */
constexpr std::uint32_t referenceElems = 16384;

/** Profiled compute time for a 16384-element task of @p type at the
 *  reference operation (5x5 filter for convolution), in microseconds. */
double referenceComputeUs(AccType type);

/** Compute time of a task, per the calibrated model. */
Tick computeTime(const TaskParams &params);

/** Input bytes a task moves per operand (32-bit elements; ISP consumes
 *  16-bit raw Bayer data). */
std::uint64_t inputBytesPerOperand(const TaskParams &params);

/** Output bytes a task produces (32-bit elements). */
std::uint64_t outputBytes(const TaskParams &params);

/** Default scratchpad capacity for @p type in bytes (Table I). */
std::uint64_t defaultSpmBytes(AccType type);

} // namespace relief

#endif // RELIEF_ACC_COMPUTE_MODEL_HH
