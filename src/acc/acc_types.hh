/**
 * @file
 * The seven elementary accelerator types (paper Table I) and the
 * elementwise operations the elem-matrix accelerator supports.
 */

#ifndef RELIEF_ACC_ACC_TYPES_HH
#define RELIEF_ACC_ACC_TYPES_HH

#include <array>
#include <cstdint>
#include <string>

namespace relief
{

/** Elementary accelerator types. */
enum class AccType : std::uint8_t
{
    ISP,          ///< Demosaic, color correction, gamma correction.
    Grayscale,    ///< RGB -> grayscale.
    Convolution,  ///< 2-D convolution, filters up to 5x5.
    ElemMatrix,   ///< Elementwise matrix ops (add, mult, tanh, ...).
    CannyNonMax,  ///< Canny non-maximum suppression.
    HarrisNonMax, ///< Harris 3x3 corner non-max enhancement.
    EdgeTracking, ///< Hysteresis edge tracking / boosting.
};

/** Number of accelerator types in the system. */
constexpr int numAccTypes = 7;

/** Elementwise operations of the elem-matrix accelerator. The paper
 *  lists add, mult, sqr, sqrt, atan2, tanh, and sigmoid; Sub, Div,
 *  Scale, and OneMinus are trivial additions needed by the deblur and
 *  RNN dataflows. */
enum class ElemOp : std::uint8_t
{
    Add,
    Sub,
    Mul,
    Div,
    Sqr,
    Sqrt,
    Atan2,
    Tanh,
    Sigmoid,
    Scale,    ///< Multiply by an immediate scalar.
    OneMinus, ///< 1 - x (GRU update-gate complement).
};

/** Compact name used in tables/traces, e.g. "C" for convolution. */
const char *accTypeSymbol(AccType type);

/** Full name, e.g. "convolution". */
const char *accTypeName(AccType type);

/** Name of an elementwise op, e.g. "tanh". */
const char *elemOpName(ElemOp op);

/** Index an array by AccType. */
constexpr std::size_t
accIndex(AccType type)
{
    return std::size_t(type);
}

/** All accelerator types, for iteration. */
constexpr std::array<AccType, numAccTypes> allAccTypes = {
    AccType::ISP,          AccType::Grayscale,   AccType::Convolution,
    AccType::ElemMatrix,   AccType::CannyNonMax, AccType::HarrisNonMax,
    AccType::EdgeTracking,
};

} // namespace relief

#endif // RELIEF_ACC_ACC_TYPES_HH
