#include "mem/bandwidth_resource.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace relief
{

BandwidthResource::BandwidthResource(std::string name, double gbPerSec,
                                     Tick fixedLatency)
    : name_(std::move(name)), gbPerSec_(gbPerSec),
      fixedLatency_(fixedLatency)
{
    RELIEF_ASSERT(gbPerSec > 0.0, "resource ", name_,
                  " needs positive bandwidth");
}

Tick
BandwidthResource::holdTime(std::uint64_t bytes) const
{
    return fixedLatency_ + transferTime(bytes, gbPerSec_);
}

Tick
BandwidthResource::claim(Tick earliest, std::uint64_t bytes)
{
    Tick start = std::max(earliest, nextFree_);
    Tick end = start + holdTime(bytes);
    nextFree_ = end;
    busy_.add(start, end);
    totalBytes_.add(bytes);
    numTransfers_.add(1);
    return start;
}

double
BandwidthResource::occupancy(Tick upTo) const
{
    if (upTo == 0)
        return 0.0;
    return double(busyTime(upTo)) / double(upTo);
}

void
BandwidthResource::resetStats()
{
    totalBytes_.reset();
    numTransfers_.reset();
    busy_.clear();
}

TransferTiming
reserveTransfer(const std::vector<BandwidthResource *> &path, Tick now,
                std::uint64_t bytes)
{
    RELIEF_ASSERT(!path.empty(), "transfer over an empty resource path");

    Tick start = now;
    Tick latencySum = 0;
    double minBw = path.front()->bandwidth();
    for (const auto *res : path) {
        start = std::max(start, res->nextFree());
        latencySum += res->fixedLatency();
        minBw = std::min(minBw, res->bandwidth());
    }
    // Claim each resource from the common start so FIFO order is
    // preserved across the chain.
    for (auto *res : path)
        res->claim(start, bytes);

    TransferTiming timing;
    timing.start = start;
    timing.end = start + latencySum + transferTime(bytes, minBw);
    return timing;
}

} // namespace relief
