#include "mem/bandwidth_resource.hh"

#include "sim/hostprof.hh"

#include <algorithm>
#include <utility>

#include "mem/pressure_ledger.hh"
#include "sim/logging.hh"

namespace relief
{

BandwidthResource::BandwidthResource(std::string name, double gbPerSec,
                                     Tick fixedLatency)
    : name_(std::move(name)), gbPerSec_(gbPerSec),
      fixedLatency_(fixedLatency)
{
    RELIEF_ASSERT(gbPerSec > 0.0, "resource ", name_,
                  " needs positive bandwidth");
}

Tick
BandwidthResource::holdTime(std::uint64_t bytes) const
{
    return fixedLatency_ + transferTime(bytes, gbPerSec_);
}

Tick
BandwidthResource::claim(Tick earliest, std::uint64_t bytes)
{
    return claim(earliest, bytes, earliest, RequestorTag{});
}

Tick
BandwidthResource::claim(Tick earliest, std::uint64_t bytes,
                         Tick request_time, const RequestorTag &tag)
{
    // Queueing delay at *this* resource: how far its existing backlog
    // alone pushes the claim past its request time. A chain's common
    // start (earliest) can be later still — that wait belongs to the
    // other resources in the path and is accounted there.
    Tick pending = nextFree_ > request_time ? nextFree_ - request_time : 0;
    waitTicks_ += pending;

    Tick start = std::max(earliest, nextFree_);
    Tick hold = holdTime(bytes);
    Tick end = start + hold;
    nextFree_ = end;
    busy_.add(start, end);
    totalBytes_.add(bytes);
    numTransfers_.add(1);
    if (ledger_)
        ledger_->record(ledgerId_, tag, request_time, pending, start,
                        hold, bytes);
    return start;
}

double
BandwidthResource::occupancy(Tick upTo) const
{
    if (upTo == 0)
        return 0.0;
    return double(busyTime(upTo)) / double(upTo);
}

void
BandwidthResource::resetStats()
{
    totalBytes_.reset();
    numTransfers_.reset();
    waitTicks_ = 0;
    busy_.clear();
}

TransferTiming
reserveTransfer(const std::vector<BandwidthResource *> &path, Tick now,
                std::uint64_t bytes)
{
    return reserveTransfer(path, now, bytes, RequestorTag{});
}

TransferTiming
reserveTransfer(const std::vector<BandwidthResource *> &path, Tick now,
                std::uint64_t bytes, const RequestorTag &tag)
{
    RELIEF_ASSERT(!path.empty(), "transfer over an empty resource path");
    // Attribute reservation work (occupancy walk, claims, the ledger
    // behind them) to the memory system rather than the DMA event
    // driving it; free when host profiling is off.
    HostProfScope prof(HostCat::Mem);

    Tick start = now;
    Tick latencySum = 0;
    double minBw = path.front()->bandwidth();
    for (const auto *res : path) {
        start = std::max(start, res->nextFree());
        latencySum += res->fixedLatency();
        minBw = std::min(minBw, res->bandwidth());
    }
    // Claim each resource from the common start so FIFO order is
    // preserved across the chain; each measures its own queueing
    // contribution against the request time.
    for (auto *res : path)
        res->claim(start, bytes, now, tag);

    TransferTiming timing;
    timing.start = start;
    timing.end = start + latencySum + transferTime(bytes, minBw);
    return timing;
}

} // namespace relief
