/**
 * @file
 * Bank-aware LPDDR5 model.
 *
 * The flat MainMemory model charges a fixed streaming-efficiency
 * factor. Real LPDDR5 (Table VI configures bank-group mode) limits a
 * *single* stream by the row activate/precharge cycle of its bank,
 * while independent streams on different banks overlap their row
 * operations and can together approach the channel's peak rate.
 *
 * BankedMemory captures that at transaction level: each transfer
 * claims (1) the bank its buffer maps to — a resource throttled to the
 * per-bank streaming rate — and (2) the shared channel at peak rate.
 * One stream sees bank-limited bandwidth; streams on distinct banks
 * aggregate until the channel saturates. Buffers map to banks by a
 * stream hint (the task-node id), mimicking address interleaving.
 */

#ifndef RELIEF_MEM_BANKED_MEMORY_HH
#define RELIEF_MEM_BANKED_MEMORY_HH

#include <memory>
#include <vector>

#include "mem/main_memory.hh"

namespace relief
{

/** Configuration for BankedMemory (extends the flat model's knobs). */
struct BankedMemoryConfig : MainMemoryConfig
{
    int numBanks = 8;
    /** Fraction of channel peak a single bank can stream (row cycle
     *  limited). The default reproduces the flat model's single-stream
     *  efficiency so the two models calibrate identically for one
     *  stream. */
    double bankEfficiency = 0.55;
    Tick bankLatency = fromNs(45.0); ///< Row activate + precharge.
};

class BankedMemory : public MainMemory
{
  public:
    BankedMemory(Simulator &sim, std::string name,
                 const BankedMemoryConfig &config = {});

    std::vector<BandwidthResource *>
    path(std::uint64_t stream_hint) override;

    std::vector<BandwidthResource *> pressureResources() override
    {
        std::vector<BandwidthResource *> all = {&channel()};
        for (auto &bank : banks_)
            all.push_back(bank.get());
        return all;
    }

    int numBanks() const { return int(banks_.size()); }
    const BandwidthResource &bank(int index) const
    {
        return *banks_[std::size_t(index)];
    }
    BandwidthResource &bank(int index)
    {
        return *banks_[std::size_t(index)];
    }

    void resetStats() override;

  private:
    BankedMemoryConfig bankedConfig_;
    std::vector<std::unique_ptr<BandwidthResource>> banks_;
};

} // namespace relief

#endif // RELIEF_MEM_BANKED_MEMORY_HH
