/**
 * @file
 * Pipelined bandwidth server.
 *
 * Every throughput-limited component in the modeled SoC (DRAM channel,
 * bus, crossbar ports, scratchpad ports, DMA channels) is represented by
 * a BandwidthResource: a FIFO-arbitrated pipe with a fixed access
 * latency and a byte rate. A transfer that crosses several resources
 * starts when the last of them becomes free and completes after the sum
 * of fixed latencies plus bytes divided by the bottleneck bandwidth;
 * each resource stays busy for bytes divided by its *own* bandwidth,
 * which is what creates queueing for later requesters.
 *
 * This transaction-level model captures contention, occupancy, and
 * traffic volume — the quantities RELIEF's evaluation depends on —
 * without per-beat events.
 */

#ifndef RELIEF_MEM_BANDWIDTH_RESOURCE_HH
#define RELIEF_MEM_BANDWIDTH_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ticks.hh"
#include "stats/interval_union.hh"
#include "stats/stats.hh"

namespace relief
{

class PressureLedger;
struct RequestorTag;

class BandwidthResource
{
  public:
    /**
     * @param name         Debug name, e.g. "dram.channel0".
     * @param gbPerSec     Sustainable byte rate (1 GB/s == 1 B/ns).
     * @param fixedLatency Per-transfer pipe latency in ticks.
     */
    BandwidthResource(std::string name, double gbPerSec, Tick fixedLatency);

    const std::string &name() const { return name_; }
    double bandwidth() const { return gbPerSec_; }
    Tick fixedLatency() const { return fixedLatency_; }

    /** Earliest tick at which a new transfer could begin here. */
    Tick nextFree() const { return nextFree_; }

    /** Time this resource is held by a transfer of @p bytes. */
    Tick holdTime(std::uint64_t bytes) const;

    /**
     * Reserve the resource for @p bytes, starting no earlier than
     * @p earliest. Advances nextFree and records the busy interval.
     * @return the tick at which the reservation begins.
     */
    Tick claim(Tick earliest, std::uint64_t bytes);

    /**
     * Tagged claim: same reservation mechanics, but the queueing
     * delay is measured against @p request_time (when the transfer
     * asked for the pipe, which reserveTransfer may have pushed past
     * via other resources in the chain) and the attached pressure
     * ledger attributes it to @p tag. The untagged claim() overload
     * is claim(earliest, bytes, earliest, untagged).
     */
    Tick claim(Tick earliest, std::uint64_t bytes, Tick request_time,
               const RequestorTag &tag);

    /** Total bytes that have crossed this resource. */
    std::uint64_t totalBytes() const { return totalBytes_.value(); }

    /** Number of reservations made. */
    std::uint64_t numTransfers() const { return numTransfers_.value(); }

    /**
     * Aggregate queueing delay suffered here: for each claim, how far
     * the pipe's existing backlog pushed it past its request time.
     * The pressure ledger's per-key waitSuffered sums to exactly this.
     */
    Tick waitTime() const { return waitTicks_; }

    /** Hook this resource into @p ledger as resource @p resource_id. */
    void
    attachLedger(PressureLedger *ledger, int resource_id)
    {
        ledger_ = ledger;
        ledgerId_ = resource_id;
    }

    PressureLedger *ledger() const { return ledger_; }
    int ledgerId() const { return ledgerId_; }

    /** Time covered by at least one reservation, clipped to [0, upTo). */
    Tick busyTime(Tick upTo = maxTick) const { return busy_.covered(upTo); }

    /** Fraction of [0, upTo) covered by reservations. */
    double occupancy(Tick upTo) const;

    void resetStats();

  private:
    std::string name_;
    double gbPerSec_;
    Tick fixedLatency_;
    Tick nextFree_ = 0;
    Counter totalBytes_;
    Counter numTransfers_;
    Tick waitTicks_ = 0;
    IntervalUnion busy_;
    PressureLedger *ledger_ = nullptr;
    int ledgerId_ = -1;
};

/**
 * Timing of a transfer across a chain of resources.
 */
struct TransferTiming
{
    Tick start; ///< When the transfer begins moving.
    Tick end;   ///< When the last byte lands at the destination.
};

/**
 * Reserve every resource in @p path for a @p bytes transfer requested at
 * @p now, and return the resulting timing. The transfer starts when all
 * resources are free; it completes after the sum of their fixed
 * latencies plus bytes over the bottleneck bandwidth.
 */
TransferTiming reserveTransfer(const std::vector<BandwidthResource *> &path,
                               Tick now, std::uint64_t bytes);

/**
 * Tagged variant: identical timing, but each resource in the chain
 * measures the claim's queueing delay against @p now and attributes it
 * to @p tag through its attached pressure ledger.
 */
TransferTiming reserveTransfer(const std::vector<BandwidthResource *> &path,
                               Tick now, std::uint64_t bytes,
                               const RequestorTag &tag);

} // namespace relief

#endif // RELIEF_MEM_BANDWIDTH_RESOURCE_HH
