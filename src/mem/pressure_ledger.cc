#include "mem/pressure_ledger.hh"
#include "sim/build_info.hh"

#include <algorithm>
#include <ostream>

#include "mem/bandwidth_resource.hh"
#include "sim/logging.hh"
#include "stats/json.hh"

namespace relief
{

namespace
{

/// Reservations a ring keeps room for before its first regrowth;
/// enough for every tier-1 mix, so the hot path never reallocates.
constexpr std::size_t ringInitialCapacity = 64;

} // namespace

const char *
pressureTrafficName(PressureTraffic traffic)
{
    switch (traffic) {
      case PressureTraffic::DramFetch:
        return "dram_fetch";
      case PressureTraffic::Writeback:
        return "writeback";
      case PressureTraffic::Forward:
        return "forward";
      case PressureTraffic::SpmSpill:
        return "spm_spill";
    }
    return "unknown";
}

PressureLedger::PressureLedger() { qosClasses_.push_back("default"); }

int
PressureLedger::addSource(const std::string &name)
{
    RELIEF_ASSERT(!sealed_, "pressure ledger sealed; cannot add source ",
                  name);
    sources_.push_back(name);
    return int(sources_.size()) - 1;
}

int
PressureLedger::addQosClass(const std::string &name)
{
    RELIEF_ASSERT(!sealed_, "pressure ledger sealed; cannot add class ",
                  name);
    qosClasses_.push_back(name);
    return int(qosClasses_.size()) - 1;
}

int
PressureLedger::addResource(BandwidthResource &res)
{
    RELIEF_ASSERT(!sealed_, "pressure ledger sealed; cannot add resource ",
                  res.name());
    int id = int(resources_.size());
    resources_.push_back(&res);
    res.attachLedger(this, id);
    return id;
}

void
PressureLedger::seal()
{
    RELIEF_ASSERT(!sealed_, "pressure ledger sealed twice");
    numKeys_ = 1 + numSources() * numQosClasses() * numPressureTraffic;
    slots_.assign(std::size_t(numResources()) * numKeys_, Slot{});
    rings_.resize(resources_.size());
    for (Ring &ring : rings_)
        ring.entries.reserve(ringInitialCapacity);
    sealed_ = true;
}

int
PressureLedger::keyFor(const RequestorTag &tag) const
{
    if (tag.source < 0 || tag.source >= numSources() ||
        tag.qosClass >= qosClasses_.size()) {
        return 0;
    }
    return 1 +
           (int(tag.source) * numQosClasses() + int(tag.qosClass)) *
               numPressureTraffic +
           int(tag.traffic);
}

int
PressureLedger::keySource(int key) const
{
    if (key <= 0)
        return -1;
    return (key - 1) / (numPressureTraffic * numQosClasses());
}

int
PressureLedger::keyQos(int key) const
{
    if (key <= 0)
        return 0;
    return ((key - 1) / numPressureTraffic) % numQosClasses();
}

PressureTraffic
PressureLedger::keyTraffic(int key) const
{
    if (key <= 0)
        return PressureTraffic::DramFetch;
    return PressureTraffic((key - 1) % numPressureTraffic);
}

const std::string &
PressureLedger::sourceName(int source) const
{
    return sources_.at(source);
}

const std::string &
PressureLedger::qosClassName(int qos) const
{
    return qosClasses_.at(qos);
}

const BandwidthResource &
PressureLedger::resource(int id) const
{
    return *resources_.at(id);
}

PressureLedger::Slot &
PressureLedger::slotRef(int resource, int key)
{
    return slots_[std::size_t(resource) * numKeys_ + key];
}

const PressureLedger::Slot &
PressureLedger::slot(int resource, int key) const
{
    RELIEF_ASSERT(sealed_, "pressure ledger not sealed");
    return slots_.at(std::size_t(resource) * numKeys_ + key);
}

void
PressureLedger::pushReservation(Ring &ring, Tick start, Tick end, int key)
{
    if (ring.entries.size() == ring.entries.capacity() && ring.head > 0) {
        // Reclaim expired entries instead of growing; the backlog a
        // resource can accumulate is bounded by in-flight transfers,
        // so this keeps the ring at its initial capacity in practice.
        ring.entries.erase(ring.entries.begin(),
                           ring.entries.begin() +
                               std::ptrdiff_t(ring.head));
        ring.head = 0;
    }
    ring.entries.push_back({start, end, std::int32_t(key)});
}

void
PressureLedger::record(int resource, const RequestorTag &tag,
                       Tick request_time, Tick pending, Tick start,
                       Tick hold, std::uint64_t bytes)
{
    RELIEF_ASSERT(sealed_, "pressure ledger recording before seal()");
    int key = keyFor(tag);
    Slot &own = slotRef(resource, key);
    own.bytes += bytes;
    own.transfers += 1;
    own.serviceTicks += hold;
    own.waitSuffered += pending;

    Ring &ring = rings_[resource];
    while (ring.head < ring.entries.size() &&
           ring.entries[ring.head].end <= request_time) {
        ++ring.head;
    }

    if (pending > 0) {
        // Walk the wait interval [request_time, request_time+pending)
        // over the outstanding reservations, oldest first, charging
        // each segment to the reservation covering (or, across an
        // idle gap, the next one holding) the pipe. The newest entry
        // ends exactly where the wait does, so the whole interval is
        // always attributed and caused == suffered per resource.
        Tick low = request_time;
        Tick wait_end = request_time + pending;
        for (std::size_t i = ring.head;
             i < ring.entries.size() && low < wait_end; ++i) {
            const Reservation &res = ring.entries[i];
            if (res.end <= low)
                continue;
            Tick hi = std::min(res.end, wait_end);
            slotRef(resource, res.key).waitCaused += hi - low;
            low = hi;
        }
        if (low < wait_end) {
            // Ring was reset mid-backlog (stats reset); keep the
            // books balanced by charging the untagged bucket.
            slotRef(resource, 0).waitCaused += wait_end - low;
        }
    }

    pushReservation(ring, start, start + hold, key);
}

PressureLedger::Slot
PressureLedger::resourceTotal(int resource) const
{
    Slot total;
    for (int key = 0; key < numKeys_; ++key)
        total.accumulate(slot(resource, key));
    return total;
}

PressureLedger::Slot
PressureLedger::qosTotal(int qos) const
{
    Slot total;
    for (int res = 0; res < numResources(); ++res) {
        for (int key = 0; key < numKeys_; ++key) {
            if (keyQos(key) == qos)
                total.accumulate(slot(res, key));
        }
    }
    return total;
}

int
PressureLedger::queueDepth(int resource, Tick now) const
{
    const Ring &ring = rings_.at(resource);
    auto first = ring.entries.begin() + std::ptrdiff_t(ring.head);
    // Reservation ends are non-decreasing (FIFO pipe), so the count
    // of entries still outstanding at @p now is a binary search away.
    auto it = std::upper_bound(
        first, ring.entries.end(), now,
        [](Tick t, const Reservation &r) { return t < r.end; });
    return int(ring.entries.end() - it);
}

std::vector<PressureLedger::Contender>
PressureLedger::topContenders(int resource, int k) const
{
    std::vector<Contender> rows;
    for (int key = 0; key < numKeys_; ++key) {
        const Slot &s = slot(resource, key);
        if (s.transfers == 0)
            continue;
        rows.push_back({key, s});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Contender &a, const Contender &b) {
                  if (a.slot.waitCaused != b.slot.waitCaused)
                      return a.slot.waitCaused > b.slot.waitCaused;
                  if (a.slot.bytes != b.slot.bytes)
                      return a.slot.bytes > b.slot.bytes;
                  return a.key < b.key;
              });
    if (int(rows.size()) > k)
        rows.resize(std::size_t(k));
    return rows;
}

void
PressureLedger::writeJson(std::ostream &os, Tick end_tick, int top_k,
                          const Summary &summary,
                          const char *schema) const
{
    RELIEF_ASSERT(sealed_, "pressure ledger not sealed");

    os << "{\n";
    if (schema) {
        // Standalone document: stamp provenance. The embedded form
        // (the stats document's "pressure" member) inherits its
        // parent's build_info instead.
        os << "  \"schema\": \"" << schema << "\",\n";
        os << "  \"build_info\": ";
        writeBuildInfoJson(os, 2);
        os << ",\n";
    }
    os << "  \"end_us\": " << jsonNumber(toUs(end_tick)) << ",\n";

    os << "  \"qos_classes\": [";
    for (int qos = 0; qos < numQosClasses(); ++qos) {
        os << (qos ? ", " : "") << "\"" << jsonEscape(qosClasses_[qos])
           << "\"";
    }
    os << "],\n  \"traffic\": [";
    for (int t = 0; t < numPressureTraffic; ++t) {
        os << (t ? ", " : "") << "\""
           << pressureTrafficName(PressureTraffic(t)) << "\"";
    }
    os << "],\n";

    Slot grand;
    for (int res = 0; res < numResources(); ++res)
        grand.accumulate(resourceTotal(res));
    os << "  \"totals\": {\n"
       << "    \"bytes\": " << grand.bytes << ",\n"
       << "    \"transfers\": " << grand.transfers << ",\n"
       << "    \"service_us\": " << jsonNumber(toUs(grand.serviceTicks))
       << ",\n"
       << "    \"wait_us\": " << jsonNumber(toUs(grand.waitSuffered))
       << ",\n"
       << "    \"dram_bytes\": " << summary.dramBytes << ",\n"
       << "    \"fabric_bytes\": " << summary.fabricBytes << ",\n"
       << "    \"bytes_spared_colocation\": "
       << summary.sparedColocationBytes << ",\n"
       << "    \"bytes_spared_forwarding\": "
       << summary.sparedForwardBytes << "\n  },\n";

    os << "  \"qos\": [\n";
    for (int qos = 0; qos < numQosClasses(); ++qos) {
        Slot total = qosTotal(qos);
        os << "    {\"name\": \"" << jsonEscape(qosClasses_[qos])
           << "\", \"bytes\": " << total.bytes
           << ", \"transfers\": " << total.transfers
           << ", \"service_us\": "
           << jsonNumber(toUs(total.serviceTicks))
           << ", \"wait_suffered_us\": "
           << jsonNumber(toUs(total.waitSuffered))
           << ", \"wait_caused_us\": "
           << jsonNumber(toUs(total.waitCaused)) << "}"
           << (qos + 1 < numQosClasses() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"resources\": [\n";
    for (int res = 0; res < numResources(); ++res) {
        const BandwidthResource &bw = *resources_[res];
        Slot total = resourceTotal(res);
        os << "    {\n      \"name\": \"" << jsonEscape(bw.name())
           << "\",\n      \"peak_gbs\": " << jsonNumber(bw.bandwidth())
           << ",\n      \"bytes\": " << total.bytes
           << ",\n      \"transfers\": " << total.transfers
           << ",\n      \"service_us\": "
           << jsonNumber(toUs(total.serviceTicks))
           << ",\n      \"wait_us\": "
           << jsonNumber(toUs(total.waitSuffered))
           << ",\n      \"busy_us\": "
           << jsonNumber(toUs(bw.busyTime(end_tick)))
           << ",\n      \"occupancy\": "
           << jsonNumber(end_tick ? bw.occupancy(end_tick) : 0.0)
           << ",\n      \"contenders\": [";
        std::vector<Contender> rows = topContenders(res, top_k);
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Contender &row = rows[i];
            int src = keySource(row.key);
            os << (i ? "," : "") << "\n        {\"source\": \""
               << jsonEscape(src < 0 ? std::string("untagged")
                                     : sources_[src])
               << "\", \"qos\": \""
               << jsonEscape(qosClasses_[keyQos(row.key)])
               << "\", \"traffic\": \""
               << (row.key == 0 ? "untagged"
                                : pressureTrafficName(
                                      keyTraffic(row.key)))
               << "\", \"bytes\": " << row.slot.bytes
               << ", \"transfers\": " << row.slot.transfers
               << ", \"service_us\": "
               << jsonNumber(toUs(row.slot.serviceTicks))
               << ", \"wait_suffered_us\": "
               << jsonNumber(toUs(row.slot.waitSuffered))
               << ", \"wait_caused_us\": "
               << jsonNumber(toUs(row.slot.waitCaused)) << "}";
        }
        os << (rows.empty() ? "]" : "\n      ]") << "\n    }"
           << (res + 1 < numResources() ? "," : "") << "\n";
    }
    os << "  ]\n}";
}

void
PressureLedger::resetStats()
{
    std::fill(slots_.begin(), slots_.end(), Slot{});
    for (Ring &ring : rings_) {
        ring.entries.clear();
        ring.head = 0;
    }
}

} // namespace relief
