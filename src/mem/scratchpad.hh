/**
 * @file
 * Accelerator-private scratchpad memory.
 *
 * Per the paper's system architecture (Fig. 3 / Table IV), every
 * accelerator owns a scratchpad that is exposed read-only on the
 * non-coherent DMA plane so consumers can pull data directly from it
 * (forwarding). The scratchpad is divided into partitions: an input
 * staging area plus a double-buffered output area. Each output
 * partition tracks the node whose output it holds, how many consumers
 * are currently reading it (`ongoing_reads`, which enforces
 * write-after-read ordering), and whether the data has also been
 * written back to main memory.
 */

#ifndef RELIEF_MEM_SCRATCHPAD_HH
#define RELIEF_MEM_SCRATCHPAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/bandwidth_resource.hh"
#include "sim/simulator.hh"
#include "stats/stats.hh"

namespace relief
{

/** Configuration for a Scratchpad. */
struct ScratchpadConfig
{
    std::uint64_t sizeBytes = 262144; ///< Total capacity (Table I).
    int numOutputPartitions = 3;      ///< Table IV: max 3 partitions.
    double portGBs = 16.0;            ///< Port bandwidth (16 B @ 1 GHz).
    Tick portLatency = fromNs(2.0);   ///< SRAM access latency.
    double readEnergyPJPerByte = 1.2;
    double writeEnergyPJPerByte = 1.4;
};

/** Bookkeeping for one output partition (paper Table IV fields). */
struct SpmPartition
{
    NodeId owner = 0;           ///< Node whose output lives here.
    bool dataValid = false;     ///< Output has been produced.
    std::uint32_t ongoingReads = 0; ///< Active consumer DMA reads.
    bool writtenBack = false;   ///< Data also resides in DRAM.
    std::uint64_t bytes = 0;    ///< Size of the held output.
    Tick producedAt = 0;        ///< When the output landed (for LRU).
};

class Scratchpad : public SimObject
{
  public:
    Scratchpad(Simulator &sim, std::string name,
               const ScratchpadConfig &config = {});

    /** Throughput resource claimed by DMA transfers touching this SPM. */
    BandwidthResource &port() { return port_; }
    const BandwidthResource &port() const { return port_; }

    int numPartitions() const { return int(partitions_.size()); }
    const SpmPartition &partition(int index) const;

    /**
     * Find a partition that can take a new output.
     *
     * A partition is reclaimable if it holds nothing, or holds data that
     * has no active readers. Preference order: empty first, then the
     * least recently produced reclaimable partition. Partitions whose
     * bit is set in @p exclude_mask (e.g. a partition the next task
     * reads in place) are never returned.
     *
     * @return partition index, or -1 if no partition qualifies.
     */
    int findFreeOutputPartition(unsigned exclude_mask = 0) const;

    /** Assign partition @p index to hold @p bytes of @p node's output.
     *  The data becomes valid only after produceOutput(). */
    void allocateOutput(int index, NodeId node, std::uint64_t bytes);

    /** Mark the output in @p index as produced (compute finished). */
    void produceOutput(int index);

    /** Locate the partition holding valid output of @p node; -1 if gone. */
    int findOutput(NodeId node) const;

    /** A consumer DMA starts reading partition @p index. */
    void beginRead(int index);

    /** A consumer DMA finished reading partition @p index. */
    void endRead(int index);

    /** Record that partition @p index's data now also lives in DRAM. */
    void markWrittenBack(int index);

    /** Drop the data in partition @p index (must have no readers). */
    void release(int index);

    /** Account @p bytes read from this SPM (energy/traffic). */
    void recordRead(std::uint64_t bytes) { readBytes_.add(bytes); }

    /** Account @p bytes written into this SPM (energy/traffic). */
    void recordWrite(std::uint64_t bytes) { writeBytes_.add(bytes); }

    std::uint64_t readBytes() const { return readBytes_.value(); }
    std::uint64_t writeBytes() const { return writeBytes_.value(); }

    /** Dynamic SPM energy in picojoules. */
    double energyPJ() const;

    const ScratchpadConfig &config() const { return config_; }
    void resetStats();

  private:
    SpmPartition &partitionRef(int index);

    ScratchpadConfig config_;
    BandwidthResource port_;
    std::vector<SpmPartition> partitions_;
    Counter readBytes_;
    Counter writeBytes_;
};

} // namespace relief

#endif // RELIEF_MEM_SCRATCHPAD_HH
