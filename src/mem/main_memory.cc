#include "mem/main_memory.hh"

#include <utility>

namespace relief
{

MainMemory::MainMemory(Simulator &sim, std::string name,
                       const MainMemoryConfig &config)
    : SimObject(sim, std::move(name)), config_(config),
      channel_(this->name() + ".channel",
               config.peakGBs * config.efficiency, config.accessLatency)
{
}

double
MainMemory::energyPJ() const
{
    return double(readBytes()) * config_.readEnergyPJPerByte +
           double(writeBytes()) * config_.writeEnergyPJPerByte;
}

void
MainMemory::resetStats()
{
    channel_.resetStats();
    readBytes_.reset();
    writeBytes_.reset();
}

} // namespace relief
