/**
 * @file
 * LPDDR5-like main-memory model.
 *
 * Table VI of the paper configures LPDDR5-6400, one 16-bit channel,
 * 12.8 GB/s peak. The per-task memory times in Table I imply an achieved
 * streaming bandwidth of roughly 55% of peak (row activations, refresh,
 * read/write turnaround), so the model serves requests through a single
 * BandwidthResource at peak * efficiency with a fixed access latency,
 * and accounts read/write bytes and energy.
 */

#ifndef RELIEF_MEM_MAIN_MEMORY_HH
#define RELIEF_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <string>

#include "mem/bandwidth_resource.hh"
#include "sim/simulator.hh"
#include "sim/ticks.hh"
#include "stats/stats.hh"

namespace relief
{

/** Configuration for MainMemory. */
struct MainMemoryConfig
{
    double peakGBs = 12.8;        ///< Channel peak bandwidth.
    double efficiency = 0.55;     ///< Achieved fraction of peak.
    Tick accessLatency = fromNs(100.0); ///< First-access latency.
    double readEnergyPJPerByte = 37.5;  ///< ~4.7 pJ/bit LPDDR5 read.
    double writeEnergyPJPerByte = 41.0; ///< ~5.1 pJ/bit LPDDR5 write.
};

class MainMemory : public SimObject
{
  public:
    MainMemory(Simulator &sim, std::string name,
               const MainMemoryConfig &config = {});

    /** The throughput resource transfers must claim. */
    BandwidthResource &channel() { return channel_; }
    const BandwidthResource &channel() const { return channel_; }

    /**
     * Resources a transfer touching this memory must claim, in order.
     * @p stream_hint identifies the buffer/stream (e.g. the task-node
     * id); the flat model ignores it, the banked model (BankedMemory)
     * maps it to a bank so independent streams can overlap.
     */
    virtual std::vector<BandwidthResource *>
    path(std::uint64_t stream_hint)
    {
        (void)stream_hint;
        return {&channel_};
    }

    /**
     * Every bandwidth resource this memory arbitrates, for
     * pressure-ledger registration (channel first, then banks in the
     * banked model). Deterministic order.
     */
    virtual std::vector<BandwidthResource *>
    pressureResources()
    {
        return {&channel_};
    }

    /** Account a read of @p bytes leaving DRAM. */
    void recordRead(std::uint64_t bytes) { readBytes_.add(bytes); }

    /** Account a write of @p bytes entering DRAM. */
    void recordWrite(std::uint64_t bytes) { writeBytes_.add(bytes); }

    std::uint64_t readBytes() const { return readBytes_.value(); }
    std::uint64_t writeBytes() const { return writeBytes_.value(); }

    /** All DRAM traffic in bytes (reads + writes). */
    std::uint64_t totalBytes() const
    {
        return readBytes() + writeBytes();
    }

    /** Dynamic DRAM energy in picojoules. */
    double energyPJ() const;

    const MainMemoryConfig &config() const { return config_; }
    virtual void resetStats();

    ~MainMemory() override = default;

  private:
    MainMemoryConfig config_;
    BandwidthResource channel_;
    Counter readBytes_;
    Counter writeBytes_;
};

} // namespace relief

#endif // RELIEF_MEM_MAIN_MEMORY_HH
