#include "mem/banked_memory.hh"

#include <utility>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace relief
{

namespace
{

/** The flat base model's channel must not throttle below peak here:
 *  banks provide the efficiency limit instead. */
MainMemoryConfig
atPeak(BankedMemoryConfig config)
{
    config.efficiency = 1.0;
    return config;
}

} // namespace

BankedMemory::BankedMemory(Simulator &sim, std::string name,
                           const BankedMemoryConfig &config)
    : MainMemory(sim, std::move(name), atPeak(config)),
      bankedConfig_(config)
{
    RELIEF_ASSERT(config.numBanks >= 1, "banked memory needs >= 1 bank");
    double bank_gbs = config.peakGBs * config.bankEfficiency;
    for (int i = 0; i < config.numBanks; ++i) {
        banks_.push_back(std::make_unique<BandwidthResource>(
            this->name() + ".bank" + std::to_string(i), bank_gbs,
            config.bankLatency));
    }
}

std::vector<BandwidthResource *>
BankedMemory::path(std::uint64_t stream_hint)
{
    std::uint64_t h = stream_hint * 2654435761ull;
    auto bank_index = std::size_t(h % std::uint64_t(banks_.size()));
    DPRINTF(Mem, "stream ", stream_hint, " -> bank ", bank_index);
    return {banks_[bank_index].get(), &channel()};
}

void
BankedMemory::resetStats()
{
    MainMemory::resetStats();
    for (auto &bank : banks_)
        bank->resetStats();
}

} // namespace relief
