/**
 * @file
 * Memory-pressure attribution ledger.
 *
 * Every BandwidthResource in the modeled SoC (DRAM channel, banks,
 * per-accelerator DMA read/write channels, scratchpad ports,
 * interconnect links) serializes transfers FIFO, so a transfer both
 * *suffers* queueing delay (it starts after its request time because
 * earlier reservations hold the pipe) and *causes* it (later
 * requesters wait behind its reservation). The ledger attributes both
 * directions per resource x requestor key, where a key is the dense
 * encoding of (source accelerator, QoS class, traffic type). This is
 * the observability substrate for RELIEF's central claim: it shows
 * *who* is pressuring each memory-plane resource, not just how busy
 * the resource is.
 *
 * Hot-path contract: once seal() has run, record() touches only
 * pre-sized slot arrays indexed by small integer ids plus a bounded
 * reservation ring per resource — no allocation, no hashing. The
 * reservation ring is what makes caused-delay attribution possible:
 * when a claim waits, the wait interval is walked over the
 * still-outstanding reservations ahead of it and each overlap is
 * charged to that reservation's key, so per resource the sum of
 * delay-caused always equals the sum of delay-suffered.
 */

#ifndef RELIEF_MEM_PRESSURE_LEDGER_HH
#define RELIEF_MEM_PRESSURE_LEDGER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace relief
{

class BandwidthResource;

/** Traffic type crossing the DMA/DRAM plane, for attribution. */
enum class PressureTraffic : std::uint8_t
{
    DramFetch = 0, ///< DRAM -> SPM operand fetch.
    Writeback = 1, ///< SPM -> DRAM write-back of an output.
    Forward = 2,   ///< Producer SPM -> consumer SPM over the fabric.
    SpmSpill = 3,  ///< Forced write-back when a partition is evicted.
};

constexpr int numPressureTraffic = 4;

const char *pressureTrafficName(PressureTraffic traffic);

/**
 * Identity of one transfer for contention attribution. source/qosClass
 * index the ledger's registered tables; requestId (DAG span or node
 * id) rides along for debug logging only — it is unbounded, so it is
 * deliberately not part of the dense slot key.
 */
struct RequestorTag
{
    std::int16_t source = -1; ///< Ledger source id; -1 == untagged.
    std::uint8_t qosClass = 0;
    PressureTraffic traffic = PressureTraffic::DramFetch;
    std::uint64_t requestId = 0;
};

class PressureLedger
{
  public:
    PressureLedger();

    // --- Registration (construction time; allocates) ---

    /** Register a traffic source (an accelerator). @return its id. */
    int addSource(const std::string &name);

    /** Register a QoS class. Class 0 ("default") is pre-registered. */
    int addQosClass(const std::string &name);

    /**
     * Register @p res and attach the ledger to it, so every claim the
     * resource serves is recorded here. @return the resource id.
     */
    int addResource(BandwidthResource &res);

    /**
     * Freeze the key space and allocate the slot table. Must run after
     * all sources/classes/resources are registered and before the
     * first record(); record() on an unsealed ledger is a bug.
     */
    void seal();
    bool sealed() const { return sealed_; }

    int numSources() const { return int(sources_.size()); }
    int numQosClasses() const { return int(qosClasses_.size()); }
    int numResources() const { return int(resources_.size()); }

    /** Dense keys: 0 is the untagged bucket, then S x Q x T slots. */
    int numKeys() const { return numKeys_; }
    int keyFor(const RequestorTag &tag) const;
    int keySource(int key) const;  ///< -1 for the untagged key.
    int keyQos(int key) const;     ///< 0 for the untagged key.
    PressureTraffic keyTraffic(int key) const;

    const std::string &sourceName(int source) const;
    const std::string &qosClassName(int qos) const;
    const BandwidthResource &resource(int id) const;

    // --- Hot path ---

    /**
     * Account one reservation on resource @p resource. Called by
     * BandwidthResource::claim with @p pending = the queueing delay
     * this claim suffered at that resource (how long the pipe's
     * backlog pushed it past @p request_time), @p start/@p hold the
     * granted reservation, and @p bytes its size. Zero-allocation
     * once sealed, except for rare amortized ring growth.
     */
    void record(int resource, const RequestorTag &tag, Tick request_time,
                Tick pending, Tick start, Tick hold, std::uint64_t bytes);

    // --- Accounting views ---

    struct Slot
    {
        std::uint64_t bytes = 0;
        std::uint64_t transfers = 0;
        Tick serviceTicks = 0;  ///< Time the resource was held.
        Tick waitSuffered = 0;  ///< Delay this key's transfers ate.
        Tick waitCaused = 0;    ///< Delay this key inflicted on others.

        void
        accumulate(const Slot &other)
        {
            bytes += other.bytes;
            transfers += other.transfers;
            serviceTicks += other.serviceTicks;
            waitSuffered += other.waitSuffered;
            waitCaused += other.waitCaused;
        }
    };

    const Slot &slot(int resource, int key) const;

    /** Sum of all slots of @p resource (== the resource's counters). */
    Slot resourceTotal(int resource) const;

    /** Claim-weighted rollup of one QoS class across all resources. */
    Slot qosTotal(int qos) const;

    /**
     * Reservations of @p resource still outstanding at @p now —
     * queued or in flight. This is the queue-depth sampler probe.
     */
    int queueDepth(int resource, Tick now) const;

    /** One contender row: a key with traffic, sorted for reporting. */
    struct Contender
    {
        int key = 0;
        Slot slot;
    };

    /**
     * Top @p k keys of @p resource by delay caused (ties: bytes, then
     * key id — fully deterministic). Reporting path; allocates.
     */
    std::vector<Contender> topContenders(int resource, int k) const;

    /** Workload-level byte totals the caller knows and we do not. */
    struct Summary
    {
        std::uint64_t dramBytes = 0;
        std::uint64_t fabricBytes = 0;
        std::uint64_t sparedColocationBytes = 0;
        std::uint64_t sparedForwardBytes = 0;
    };

    /**
     * Emit the pressure document body: totals, per-QoS rollups, and
     * per-resource contender tables. When @p schema is non-null it is
     * emitted as a leading "schema" field (the relief-pressure-v1
     * artifact); pass nullptr to embed the same body inside another
     * document (the stats JSON "pressure" block).
     */
    void writeJson(std::ostream &os, Tick end_tick, int top_k,
                   const Summary &summary, const char *schema) const;

    void resetStats();

  private:
    struct Reservation
    {
        Tick start = 0;
        Tick end = 0;
        std::int32_t key = 0;
    };

    /**
     * Outstanding reservations of one resource, oldest first. Stored
     * as a vector with an explicit head: expired entries (end <=
     * request time) are consumed by advancing head_ and reclaimed by
     * compaction before the vector would otherwise grow.
     */
    struct Ring
    {
        std::vector<Reservation> entries;
        std::size_t head = 0;

        std::size_t size() const { return entries.size() - head; }
    };

    Slot &slotRef(int resource, int key);
    void pushReservation(Ring &ring, Tick start, Tick end, int key);

    std::vector<std::string> sources_;
    std::vector<std::string> qosClasses_;
    std::vector<BandwidthResource *> resources_;
    std::vector<Slot> slots_; ///< numResources x numKeys, row-major.
    std::vector<Ring> rings_; ///< One per resource.
    int numKeys_ = 0;
    bool sealed_ = false;
};

} // namespace relief

#endif // RELIEF_MEM_PRESSURE_LEDGER_HH
