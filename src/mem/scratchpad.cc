#include "mem/scratchpad.hh"

#include <utility>

#include "sim/logging.hh"

namespace relief
{

Scratchpad::Scratchpad(Simulator &sim, std::string name,
                       const ScratchpadConfig &config)
    : SimObject(sim, std::move(name)), config_(config),
      port_(this->name() + ".port", config.portGBs, config.portLatency),
      partitions_(std::size_t(config.numOutputPartitions))
{
    RELIEF_ASSERT(config.numOutputPartitions >= 1,
                  "scratchpad needs at least one output partition");
}

const SpmPartition &
Scratchpad::partition(int index) const
{
    RELIEF_ASSERT(index >= 0 && index < numPartitions(),
                  name(), ": bad partition index ", index);
    return partitions_[std::size_t(index)];
}

SpmPartition &
Scratchpad::partitionRef(int index)
{
    RELIEF_ASSERT(index >= 0 && index < numPartitions(),
                  name(), ": bad partition index ", index);
    return partitions_[std::size_t(index)];
}

int
Scratchpad::findFreeOutputPartition(unsigned exclude_mask) const
{
    int best = -1;
    Tick bestAge = maxTick;
    for (int i = 0; i < numPartitions(); ++i) {
        if (exclude_mask & (1u << unsigned(i)))
            continue;
        const auto &p = partitions_[std::size_t(i)];
        if (p.owner == 0)
            return i;
        if (p.ongoingReads == 0 && p.producedAt < bestAge) {
            best = i;
            bestAge = p.producedAt;
        }
    }
    return best;
}

void
Scratchpad::allocateOutput(int index, NodeId node, std::uint64_t bytes)
{
    auto &p = partitionRef(index);
    RELIEF_ASSERT(p.ongoingReads == 0,
                  name(), ": allocating partition ", index,
                  " with active readers");
    p.owner = node;
    p.dataValid = false;
    p.writtenBack = false;
    p.bytes = bytes;
    p.producedAt = 0;
}

void
Scratchpad::produceOutput(int index)
{
    auto &p = partitionRef(index);
    RELIEF_ASSERT(p.owner != 0, name(), ": producing into empty partition");
    p.dataValid = true;
    p.producedAt = now();
}

int
Scratchpad::findOutput(NodeId node) const
{
    for (int i = 0; i < numPartitions(); ++i) {
        const auto &p = partitions_[std::size_t(i)];
        if (p.owner == node && p.dataValid)
            return i;
    }
    return -1;
}

void
Scratchpad::beginRead(int index)
{
    auto &p = partitionRef(index);
    RELIEF_ASSERT(p.dataValid, name(), ": reading invalid partition ",
                  index);
    ++p.ongoingReads;
}

void
Scratchpad::endRead(int index)
{
    auto &p = partitionRef(index);
    RELIEF_ASSERT(p.ongoingReads > 0,
                  name(), ": endRead with no active readers");
    --p.ongoingReads;
}

void
Scratchpad::markWrittenBack(int index)
{
    partitionRef(index).writtenBack = true;
}

void
Scratchpad::release(int index)
{
    auto &p = partitionRef(index);
    RELIEF_ASSERT(p.ongoingReads == 0,
                  name(), ": releasing partition ", index,
                  " with active readers");
    p = SpmPartition{};
}

double
Scratchpad::energyPJ() const
{
    return double(readBytes()) * config_.readEnergyPJPerByte +
           double(writeBytes()) * config_.writeEnergyPJPerByte;
}

void
Scratchpad::resetStats()
{
    port_.resetStats();
    readBytes_.reset();
    writeBytes_.reset();
}

} // namespace relief
