/**
 * @file
 * Figure 9 — QoS and fairness under high contention, all eight
 * policies (including LL and RELIEF-LAX):
 *  (a) per-application slowdown (runtime / deadline): min, median, max
 *      across the mix's three applications — the paper's box plot;
 *  (b) percent of DAG deadlines met.
 * Paper result: RELIEF cuts worst-case slowdown and slowdown variance
 * (up to 17% / 93% vs HetSched) while HetSched meets more DAG
 * deadlines by unfairly starving one application.
 */

#include <algorithm>

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 9: slowdown and DAG deadlines met under high "
                 "contention\n\n";

    Table slow("Fig 9a — slowdown (min / median / max across apps)");
    Table dag("Fig 9b — DAG deadlines met (%)");
    std::vector<std::string> header = {"mix"};
    for (PolicyKind policy : allPolicies)
        header.push_back(policyName(policy));
    slow.setHeader(header);
    dag.setHeader(header);

    Table var("Fig 9a aux — slowdown variance across apps");
    var.setHeader(header);

    for (const std::string &mix : mixesFor(Contention::High)) {
        std::vector<std::string> slow_row = {mix}, dag_row = {mix},
                                 var_row = {mix};
        for (PolicyKind policy : allPolicies) {
            MetricsReport r = run(mix, policy, Contention::High);
            std::vector<double> slowdowns;
            int dags_met = 0, dags_total = 0;
            for (const AppOutcome &app : r.apps) {
                slowdowns.push_back(app.meanSlowdown());
                dags_met += app.deadlinesMet;
                dags_total += std::max(app.iterations, 1);
            }
            std::sort(slowdowns.begin(), slowdowns.end());
            slow_row.push_back(
                Table::num(slowdowns.front(), 2) + "/" +
                Table::num(slowdowns[slowdowns.size() / 2], 2) + "/" +
                Table::num(slowdowns.back(), 2));
            Accum acc;
            for (double s : slowdowns)
                acc.sample(s);
            var_row.push_back(Table::num(acc.variance(), 4));
            dag_row.push_back(Table::num(
                100.0 * double(dags_met) / double(dags_total), 1));
        }
        slow.addRow(slow_row);
        dag.addRow(dag_row);
        var.addRow(var_row);
    }
    slow.emit(std::cout);
    std::cout << "\n";
    var.emit(std::cout);
    std::cout << "\n";
    dag.emit(std::cout);
    return 0;
}
