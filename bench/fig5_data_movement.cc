/**
 * @file
 * Figure 5 — data-movement breakdown per mix and policy, for all four
 * contention levels: main-memory traffic (lower bars) and SPM-to-SPM
 * traffic (upper bars) as a percentage of total data movement when
 * every load and store goes through main memory; the remaining gap to
 * 100% is movement eliminated by colocation. Key paper result: RELIEF
 * cuts DRAM traffic by up to 32% vs HetSched.
 */

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 5: data movement normalized to the all-DRAM "
                 "baseline (%)\n\n";
    for (Contention level : allLevels) {
        std::string name =
            std::string("Fig 5 (") + contentionName(level) + ")";
        printPanel(name + " — DRAM traffic %", level, mainPolicies,
                   [](const MetricsReport &r) {
                       return 100.0 * r.dramTrafficFraction();
                   });
        printPanel(name + " — SPM-to-SPM traffic %", level, mainPolicies,
                   [](const MetricsReport &r) {
                       return 100.0 * r.spmTrafficFraction();
                   });
    }

    // Headline comparison: RELIEF vs HetSched DRAM traffic.
    std::cout << "RELIEF DRAM-traffic reduction vs HetSched:\n";
    for (Contention level : allLevels) {
        std::vector<double> ratios;
        for (const std::string &mix : mixesFor(level)) {
            double relief =
                double(run(mix, PolicyKind::Relief, level).dramBytes);
            double hetsched =
                double(run(mix, PolicyKind::HetSched, level).dramBytes);
            if (hetsched > 0.0)
                ratios.push_back(relief / hetsched);
        }
        std::cout << "  " << contentionName(level) << ": avg "
                  << Table::num((1.0 - geomean(ratios)) * 100.0)
                  << " % lower\n";
    }
    return 0;
}
