/**
 * @file
 * Figure 7 — accelerator occupancy (sum over accelerators of compute
 * busy time over end-to-end execution time) per mix and policy, for
 * all four contention levels. Higher is better.
 */

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 7: accelerator occupancy\n\n";
    for (Contention level : allLevels) {
        printPanel(std::string("Fig 7 (") + contentionName(level) + ")",
                   level, mainPolicies,
                   [](const MetricsReport &r) { return r.accOccupancy; },
                   3);
    }
    return 0;
}
