/**
 * @file
 * Figure 2 — the motivating example: small DAGs with known ideal
 * schedules, executed under every policy. The bench prints, per
 * policy, the schedule (launch/finish per node), the forwards and
 * colocations achieved, and the deadline outcome — showing how
 * deadline/laxity-driven baselines forfeit forwarding opportunities
 * that RELIEF realizes (the ideal schedule).
 */

#include <iostream>

#include "core/relief.hh"
#include "sched/oracle.hh"

using namespace relief;

namespace
{

TaskParams
unitTask(AccType type)
{
    TaskParams p;
    p.type = type;
    p.numInputs = 1;
    p.elems = 256; // negligible transfer sizes
    return p;
}

/** Two pipelines contending over three accelerator types, in the
 *  spirit of the paper's two example DAGs. */
std::vector<DagPtr>
buildExample()
{
    auto make = [](const std::string &name, Tick deadline,
                   std::vector<AccType> types,
                   std::vector<double> runtimes_us) {
        auto dag = std::make_shared<Dag>(name, name[0]);
        Node *prev = nullptr;
        for (std::size_t i = 0; i < types.size(); ++i) {
            Node *n = dag->addNode(unitTask(types[i]),
                                   name + "." + std::to_string(i));
            n->fixedRuntime = fromUs(runtimes_us[i] * 100.0);
            if (prev)
                dag->addEdge(prev, n);
            prev = n;
        }
        dag->setRelativeDeadline(deadline);
        dag->finalize();
        return dag;
    };

    // Runtimes in "time units" of 100 us, node counts and deadlines
    // mirroring Fig. 2's scale. Both pipelines start and end on the
    // (single) elem-matrix accelerator, so any interleaving of the two
    // DAGs forfeits producer/consumer locality — the figure's point.
    std::vector<DagPtr> dags;
    dags.push_back(make("1", fromUs(3000.0),
                        {AccType::ElemMatrix, AccType::ElemMatrix,
                         AccType::ElemMatrix, AccType::ElemMatrix},
                        {2.0, 3.0, 5.0, 2.0}));
    dags.push_back(make("2", fromUs(2800.0),
                        {AccType::ElemMatrix, AccType::ElemMatrix,
                         AccType::ElemMatrix, AccType::ElemMatrix},
                        {5.0, 2.0, 3.0, 2.0}));
    return dags;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 2: motivating example — schedules per policy\n"
                 "(two 4-node pipelines; runtimes in 100-us units; "
                 "deadlines 16 and 15 units)\n\n";

    Table summary("Fig 2 summary");
    summary.setHeader({"policy", "forwards", "colocations",
                       "DAG deadlines met", "makespan (units)"});

    for (PolicyKind kind : allPolicies) {
        SocConfig config;
        config.policy = kind;
        config.manager.computeJitter = 0.0;
        Soc soc(config);
        std::vector<DagPtr> dags = buildExample();
        for (DagPtr &dag : dags)
            soc.submit(dag);
        soc.run(continuousWindow);
        MetricsReport report = soc.report();

        Table sched(std::string("Schedule under ") + policyName(kind));
        sched.setHeader({"node", "acc", "launch", "finish", "input"});
        Tick makespan = 0;
        for (DagPtr &dag : dags) {
            for (Node *node : dag->allNodes()) {
                const char *source = "ext";
                if (!node->inputSources.empty()) {
                    switch (node->inputSources[0]) {
                      case InputSource::Dram:
                        source = "DRAM";
                        break;
                      case InputSource::Forwarded:
                        source = "forward";
                        break;
                      case InputSource::Colocated:
                        source = "coloc";
                        break;
                    }
                }
                sched.addRow({node->label,
                              accTypeSymbol(node->params.type),
                              Table::num(toUs(node->launchedAt) / 100.0,
                                         2),
                              Table::num(toUs(node->finishedAt) / 100.0,
                                         2),
                              source});
                makespan = std::max(makespan, node->finishedAt);
            }
        }
        sched.emit(std::cout);
        std::cout << "\n";

        summary.addRow({policyName(kind),
                        std::to_string(report.run.forwards),
                        std::to_string(report.run.colocations),
                        std::to_string(report.run.dagDeadlinesMet) + "/2",
                        Table::num(toUs(makespan) / 100.0, 2)});
    }
    // The "Ideal" row (Fig. 2b): exhaustive search over every
    // schedule, including deliberate idling.
    {
        std::vector<DagPtr> dags = buildExample();
        std::array<int, std::size_t(numAccTypes)> instances = {
            1, 1, 1, 1, 1, 1, 1};
        OracleResult ideal = findIdealSchedule(
            {dags[0].get(), dags[1].get()}, instances);
        summary.addRow({"Ideal (oracle)",
                        std::to_string(ideal.forwards),
                        std::to_string(ideal.colocations),
                        std::to_string(ideal.dagDeadlinesMet) + "/2",
                        Table::num(toUs(ideal.makespan) / 100.0, 2)});
    }
    summary.emit(std::cout);
    return 0;
}
