/**
 * @file
 * Figure 12 — scheduler execution time per policy: average and tail
 * latency of pushing one task into a ready queue.
 *
 * Two views, matching the paper's methodology:
 *  1. google-benchmark measurement of this repository's actual policy
 *     code (host-side cost of one ready-queue insertion at varying
 *     queue depth) — the relative ordering FCFS < GEDF < LL/LAX <
 *     HetSched < RELIEF is the reproduced result;
 *  2. the modeled Cortex-A7 push costs observed during a
 *     high-contention simulation (average and tail), which is what the
 *     simulated manager charges.
 * Paper result: RELIEF costs the most but is easily overlapped with
 * accelerator execution.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

/** Fill a ready queue with @p depth laxity-sorted nodes. */
void
fillQueue(Dag &dag, ReadyQueues &queues, Policy &policy, int depth)
{
    SchedContext ctx;
    for (int i = 0; i < depth; ++i) {
        TaskParams p;
        p.type = AccType::ElemMatrix;
        Node *n = dag.addNode(p, "q" + std::to_string(i));
        n->deadline = fromUs(double(100 + 37 * (i * 7 % 13)));
        n->predictedRuntime = fromUs(double(10 + i % 5));
        n->laxityKey = STick(n->deadline) - STick(n->predictedRuntime);
        policy.onNodesReady({n}, ctx, queues);
    }
}

void
benchPush(benchmark::State &state, PolicyKind kind)
{
    auto policy = makePolicy(kind);
    const int depth = int(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        Dag dag("bench", 'B');
        ReadyQueues queues;
        fillQueue(dag, queues, *policy, depth);
        TaskParams p;
        p.type = AccType::ElemMatrix;
        Node *incoming = dag.addNode(p, "incoming");
        incoming->deadline = fromUs(150.0);
        incoming->predictedRuntime = fromUs(12.0);
        incoming->laxityKey =
            STick(incoming->deadline) - STick(incoming->predictedRuntime);
        SchedContext ctx;
        ctx.idleCount[accIndex(AccType::ElemMatrix)] = 1;
        state.ResumeTiming();

        policy->onNodesReady({incoming}, ctx, queues);
        benchmark::DoNotOptimize(queues);
    }
}

void
printModeledLatencies()
{
    Table table("Fig 12 — modeled Cortex-A7 push latency during "
                "high-contention mixes (us)");
    table.setHeader({"policy", "average", "tail (max)"});
    for (PolicyKind kind : allPolicies) {
        Accum means, tails;
        for (const char *mix : {"CDG", "CGL", "GHL", "DHL"}) {
            ExperimentConfig config;
            config.soc.policy = kind;
            config.mix = mix;
            MetricsReport r = runExperiment(config);
            means.sample(r.run.pushLatency.mean());
            tails.sample(r.run.pushLatency.max());
        }
        table.addRow({policyName(kind),
                      Table::num(toUs(Tick(means.mean())), 3),
                      Table::num(toUs(Tick(tails.max())), 3)});
    }
    table.emit(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    printModeledLatencies();

    for (PolicyKind kind : allPolicies) {
        std::string bench_name = std::string("push/") + policyName(kind);
        auto *bench = benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [kind](benchmark::State &state) { benchPush(state, kind); });
        bench->Arg(4)->Arg(16)->Arg(64);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
