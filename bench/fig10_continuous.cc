/**
 * @file
 * Figure 10 + Table VII — fairness under continuous contention: each
 * triple's applications loop back-to-back for 50 ms.
 *  (a) per-application geometric-mean slowdown (inf = starved);
 *  (b) percent of DAG deadlines met;
 *  Table VII: completed DAG iterations per application and policy.
 * Paper results: LAX starves Deblur in most mixes; RELIEF spreads
 * slowdown evenly (DGL: every app <7% slowdown, 98% lower variance).
 */

#include <algorithm>
#include <cmath>

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 10 / Table VII: continuous contention\n\n";

    Table slow("Fig 10a — gmean slowdown per app (order of mix symbols; "
               "inf = starved)");
    Table dag("Fig 10b — DAG deadlines met (%)");
    Table iters("Table VII — finished DAG iterations per app");
    std::vector<std::string> header = {"mix"};
    for (PolicyKind policy : allPolicies)
        header.push_back(policyName(policy));
    slow.setHeader(header);
    dag.setHeader(header);
    iters.setHeader(header);

    for (const std::string &mix : mixesFor(Contention::Continuous)) {
        std::vector<std::string> slow_row = {mix}, dag_row = {mix},
                                 iter_row = {mix};
        for (PolicyKind policy : allPolicies) {
            MetricsReport r = run(mix, policy, Contention::Continuous);
            std::string slows, its;
            int met = 0, total = 0;
            for (const AppOutcome &app : r.apps) {
                if (!slows.empty()) {
                    slows += "/";
                    its += "/";
                }
                slows += app.starved()
                             ? "inf"
                             : Table::num(app.meanSlowdown(), 2);
                its += std::to_string(app.iterations);
                met += app.deadlinesMet;
                total += app.iterations;
            }
            slow_row.push_back(slows);
            iter_row.push_back(its);
            dag_row.push_back(total ? Table::num(100.0 * met / total, 1)
                                    : "0.0");
        }
        slow.addRow(slow_row);
        dag.addRow(dag_row);
        iters.addRow(iter_row);
    }
    slow.emit(std::cout);
    std::cout << "\n";
    dag.emit(std::cout);
    std::cout << "\n";
    iters.emit(std::cout);
    return 0;
}
