/**
 * @file
 * Platform-sensitivity sweeps (microarchitectural design decisions the
 * paper varies or assumes):
 *
 *  1. DRAM streaming efficiency — lower achievable bandwidth makes
 *     data movement costlier, widening RELIEF's advantage;
 *  2. accelerator instance counts — with two instances of each type
 *     there is slack everywhere and every policy forwards more;
 *  3. manager ISR latency — scheduling overhead must overlap
 *     accelerator execution (Observation 9); sweeping it shows when
 *     that stops being true;
 *  4. DMA setup latency — per-transfer fixed costs shift the
 *     colocation-vs-forward balance.
 *
 * All runs: GHL (the most forwarding-sensitive triple) plus the
 * high-contention gmean.
 */

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

double
forwardPct(const SocConfig &config, const std::string &mix)
{
    ExperimentConfig experiment;
    experiment.soc = config;
    experiment.mix = mix;
    return 100.0 * runExperiment(experiment).forwardFraction();
}

double
deadlinePct(const SocConfig &config, const std::string &mix)
{
    ExperimentConfig experiment;
    experiment.soc = config;
    experiment.mix = mix;
    return 100.0 * runExperiment(experiment).run.nodeDeadlineFraction();
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const std::string mix = "GHL";

    {
        Table table("DRAM efficiency sweep (mix GHL)");
        table.setHeader({"efficiency", "LAX fwd%", "RELIEF fwd%",
                         "LAX deadlines%", "RELIEF deadlines%"});
        for (double eff : {0.35, 0.45, 0.55, 0.75, 1.0}) {
            SocConfig lax, relief;
            lax.policy = PolicyKind::Lax;
            relief.policy = PolicyKind::Relief;
            lax.mem.efficiency = eff;
            relief.mem.efficiency = eff;
            table.addRow({Table::num(eff, 2),
                          Table::num(forwardPct(lax, mix)),
                          Table::num(forwardPct(relief, mix)),
                          Table::num(deadlinePct(lax, mix)),
                          Table::num(deadlinePct(relief, mix))});
        }
        table.emit(std::cout);
        std::cout << "\n";
    }

    {
        Table table("Accelerator instance-count sweep (mix GHL)");
        table.setHeader({"instances/type", "LAX fwd%", "RELIEF fwd%",
                         "LAX deadlines%", "RELIEF deadlines%"});
        for (int count : {1, 2, 3}) {
            SocConfig lax, relief;
            lax.policy = PolicyKind::Lax;
            relief.policy = PolicyKind::Relief;
            lax.instances.fill(count);
            relief.instances.fill(count);
            table.addRow({std::to_string(count),
                          Table::num(forwardPct(lax, mix)),
                          Table::num(forwardPct(relief, mix)),
                          Table::num(deadlinePct(lax, mix)),
                          Table::num(deadlinePct(relief, mix))});
        }
        table.emit(std::cout);
        std::cout << "\n";
    }

    {
        Table table("Manager ISR-latency sweep (mix GHL, RELIEF)");
        table.setHeader({"ISR latency (us)", "deadlines%", "fwd%",
                         "exec time (ms)"});
        for (double isr_us : {0.1, 0.4, 2.0, 10.0, 50.0}) {
            SocConfig config;
            config.policy = PolicyKind::Relief;
            config.manager.isrLatency = fromUs(isr_us);
            ExperimentConfig experiment;
            experiment.soc = config;
            experiment.mix = mix;
            MetricsReport r = runExperiment(experiment);
            table.addRow({Table::num(isr_us, 1),
                          Table::num(100.0 * r.run.nodeDeadlineFraction()),
                          Table::num(100.0 * r.forwardFraction()),
                          Table::num(toMs(r.execTime), 2)});
        }
        table.emit(std::cout);
        std::cout << "\n";
    }

    {
        Table table("Memory model: flat efficiency vs bank-aware "
                    "(mix GHL)");
        table.setHeader({"model", "LAX deadlines%", "RELIEF deadlines%",
                         "LAX exec (ms)", "RELIEF exec (ms)"});
        for (bool banked : {false, true}) {
            SocConfig lax, relief;
            lax.policy = PolicyKind::Lax;
            relief.policy = PolicyKind::Relief;
            lax.bankedMemory = banked;
            relief.bankedMemory = banked;
            ExperimentConfig el, er;
            el.soc = lax;
            er.soc = relief;
            el.mix = mix;
            er.mix = mix;
            MetricsReport rl = runExperiment(el);
            MetricsReport rr = runExperiment(er);
            table.addRow({banked ? "banked (8 banks)" : "flat",
                          Table::num(100.0 * rl.run.nodeDeadlineFraction()),
                          Table::num(100.0 * rr.run.nodeDeadlineFraction()),
                          Table::num(toMs(rl.execTime), 2),
                          Table::num(toMs(rr.execTime), 2)});
        }
        table.emit(std::cout);
        std::cout << "\n";
    }

    {
        Table table("Forwarding mechanism: SPM-to-SPM DMA vs "
                    "AXI-stream FIFOs (RELIEF)");
        table.setHeader({"mix", "DMA fwd%", "stream fwd%",
                         "DMA exec (ms)", "stream exec (ms)"});
        for (const std::string &m : mixesFor(Contention::High)) {
            SocConfig dma_cfg, stream_cfg;
            dma_cfg.policy = PolicyKind::Relief;
            stream_cfg.policy = PolicyKind::Relief;
            stream_cfg.manager.forwardMechanism =
                ForwardMechanism::StreamBuffer;
            ExperimentConfig ed, es;
            ed.soc = dma_cfg;
            es.soc = stream_cfg;
            ed.mix = m;
            es.mix = m;
            MetricsReport rd = runExperiment(ed);
            MetricsReport rs = runExperiment(es);
            table.addRow({m, Table::num(100.0 * rd.forwardFraction()),
                          Table::num(100.0 * rs.forwardFraction()),
                          Table::num(toMs(rd.execTime), 2),
                          Table::num(toMs(rs.execTime), 2)});
        }
        table.emit(std::cout);
        std::cout << "\n";
    }

    {
        Table table("DMA setup-latency sweep (mix GHL, RELIEF)");
        table.setHeader({"setup (us)", "deadlines%", "fwd%",
                         "exec time (ms)"});
        for (double setup_us : {0.1, 0.5, 1.0, 2.0}) {
            SocConfig config;
            config.policy = PolicyKind::Relief;
            config.dma.setupLatency = fromUs(setup_us);
            ExperimentConfig experiment;
            experiment.soc = config;
            experiment.mix = mix;
            MetricsReport r = runExperiment(experiment);
            table.addRow({Table::num(setup_us, 1),
                          Table::num(100.0 * r.run.nodeDeadlineFraction()),
                          Table::num(100.0 * r.forwardFraction()),
                          Table::num(toMs(r.execTime), 2)});
        }
        table.emit(std::cout);
    }
    return 0;
}
