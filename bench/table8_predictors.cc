/**
 * @file
 * Table VIII — predictor accuracy and its (lack of) performance
 * impact under high contention with RELIEF:
 *  - compute-time prediction error per mix;
 *  - memory-time prediction error per bandwidth predictor
 *    (Max / Last / Average / EWMA), with the graph data-movement
 *    predictor;
 *  - forwards and node deadlines met per bandwidth predictor.
 * Paper result: compute error ~0.03%; Max underestimates memory time
 * badly, Average is most accurate — and none of it changes forwards or
 * deadlines meaningfully (Observation 8).
 */

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

struct PredRun
{
    double computeErr;
    double memoryErr;
    std::uint64_t forwards;
    std::uint64_t deadlines;
};

PredRun
runWith(const std::string &mix, BwPredictorKind bw, DmPredictorKind dm)
{
    SocConfig config;
    config.policy = PolicyKind::Relief;
    config.bwPredictor = bw;
    config.dmPredictor = dm;
    Soc soc(config);
    for (AppId app : parseMix(mix))
        soc.submit(buildApp(app));
    soc.run(continuousWindow);
    PredRun out;
    out.computeErr = soc.manager().predictor().computeErrorAbsPct();
    out.memoryErr = soc.manager().predictor().memoryErrorPct();
    MetricsReport r = soc.report();
    out.forwards = r.run.forwards + r.run.colocations;
    out.deadlines = r.run.nodeDeadlinesMet;
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    const std::vector<BwPredictorKind> bw_kinds = {
        BwPredictorKind::Max, BwPredictorKind::Last,
        BwPredictorKind::Average, BwPredictorKind::Ewma};

    Table err("Table VIII — prediction error (%) under high contention "
              "(RELIEF, graph DM predictor)");
    std::vector<std::string> header = {"mix", "compute err"};
    for (BwPredictorKind bw : bw_kinds)
        header.push_back(std::string("mem err ") + bwPredictorName(bw));
    err.setHeader(header);

    Table impact("Table VIII — forwards+colocations / node deadlines "
                 "met per bandwidth predictor");
    std::vector<std::string> header2 = {"mix"};
    for (BwPredictorKind bw : bw_kinds)
        header2.push_back(bwPredictorName(bw));
    impact.setHeader(header2);

    for (const std::string &mix : mixesFor(Contention::High)) {
        std::vector<std::string> err_row = {mix};
        std::vector<std::string> impact_row = {mix};
        bool first = true;
        for (BwPredictorKind bw : bw_kinds) {
            PredRun r = runWith(mix, bw, DmPredictorKind::Graph);
            if (first) {
                err_row.push_back(Table::num(r.computeErr, 3));
                first = false;
            }
            err_row.push_back(Table::num(r.memoryErr, 2));
            impact_row.push_back(std::to_string(r.forwards) + " / " +
                                 std::to_string(r.deadlines));
        }
        err.addRow(err_row);
        impact.addRow(impact_row);
    }
    err.emit(std::cout);
    std::cout << "\n";
    impact.emit(std::cout);
    return 0;
}
