/**
 * @file
 * Tables I, II and V — the motivation data:
 *  - Table I: per-task compute and memory time per accelerator type
 *    (memory time measured by running one task of that type alone with
 *    forwarding disabled);
 *  - Table II: per-application total compute time vs memory time
 *    without forwarding vs with forwarding used whenever possible;
 *  - Table V: per-application standalone runtime and laxity.
 * Paper headline: RNN applications spend ~75% of their time on data
 * movement, and ideal forwarding cuts it by up to 2x.
 */

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

/** Sum of measured memory time across all nodes of a finished DAG. */
Tick
totalMemTime(Dag &dag)
{
    Tick total = 0;
    for (Node *node : dag.allNodes())
        total += node->actualMemTime;
    return total;
}

struct AppRun
{
    Tick computeTime;
    Tick memTime;
    Tick runtime;
};

AppRun
runAlone(AppId app, bool forwarding)
{
    SocConfig config;
    config.policy = forwarding ? PolicyKind::Relief : PolicyKind::Fcfs;
    config.manager.forwardingEnabled = forwarding;
    Soc soc(config);
    DagPtr dag = buildApp(app);
    soc.submit(dag);
    soc.run(continuousWindow);
    AppRun result;
    result.computeTime = dag->totalComputeTime();
    result.memTime = totalMemTime(*dag);
    result.runtime = dag->complete() ? dag->finishTick() - dag->arrivalTick()
                                     : continuousWindow;
    return result;
}

} // namespace

int
main()
{
    setInformEnabled(false);

    // --- Table I: per-task times per accelerator type ---
    Table t1("Table I — per-task compute time (us) and scratchpad size");
    t1.setHeader({"accelerator", "SPAD (B)", "compute (us)"});
    for (AccType type : allAccTypes) {
        TaskParams p;
        p.type = type;
        t1.addRow({accTypeName(type),
                   std::to_string(defaultSpmBytes(type)),
                   Table::num(toUs(computeTime(p)), 2)});
    }
    t1.emit(std::cout);
    std::cout << "\n";

    // --- Table II: compute vs memory time per application ---
    Table t2("Table II — absolute compute vs data-movement time (us)");
    t2.setHeader({"application", "compute", "mem (no fwd)",
                  "mem (forwarding)", "mem reduction %"});
    for (AppId app : allApps) {
        AppRun no_fwd = runAlone(app, false);
        AppRun fwd = runAlone(app, true);
        double reduction =
            100.0 * (1.0 - double(fwd.memTime) / double(no_fwd.memTime));
        t2.addRow({appName(app), Table::num(toUs(no_fwd.computeTime), 2),
                   Table::num(toUs(no_fwd.memTime), 2),
                   Table::num(toUs(fwd.memTime), 2),
                   Table::num(reduction, 1)});
    }
    t2.emit(std::cout);
    std::cout << "\n";

    // --- Data-movement share (the paper's "up to 75%" motivation) ---
    Table share("Data-movement share of serial execution time (no fwd)");
    share.setHeader({"application", "movement %"});
    for (AppId app : allApps) {
        AppRun no_fwd = runAlone(app, false);
        double pct = 100.0 * double(no_fwd.memTime) /
                     double(no_fwd.memTime + no_fwd.computeTime);
        share.addRow({appName(app), Table::num(pct, 1)});
    }
    share.emit(std::cout);
    std::cout << "\n";

    // --- Table V: standalone runtime and laxity ---
    Table t5("Table V — deadline and laxity when run alone");
    t5.setHeader({"application", "deadline (ms)", "runtime (ms)",
                  "laxity (ms)"});
    for (AppId app : allApps) {
        AppRun fwd = runAlone(app, true);
        Tick deadline = appDeadline(app);
        double laxity_ms = toMs(deadline) - toMs(fwd.runtime);
        t5.addRow({appName(app), Table::num(toMs(deadline), 1),
                   Table::num(toMs(fwd.runtime), 2),
                   Table::num(laxity_ms, 2)});
    }
    t5.emit(std::cout);
    return 0;
}
