/**
 * @file
 * Figure 4 — percent of total forwards and colocations per mix, for
 * all four contention levels, across the six main policies. Forwards
 * and colocations are reported separately (the paper stacks them),
 * plus their sum; the paper's headline: RELIEF consistently achieves
 * the most, >65% of all edges on average.
 */

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 4: forwards + colocations as % of edges in the "
                 "mix\n\n";
    for (Contention level : allLevels) {
        std::string name =
            std::string("Fig 4 (") + contentionName(level) + ")";
        printPanel(name + " — forwards %", level, mainPolicies,
                   [](const MetricsReport &r) {
                       return 100.0 * double(r.run.forwards) /
                              double(std::max<std::uint64_t>(
                                  r.run.edgesConsumed, 1));
                   });
        printPanel(name + " — colocations %", level, mainPolicies,
                   [](const MetricsReport &r) {
                       return 100.0 * double(r.run.colocations) /
                              double(std::max<std::uint64_t>(
                                  r.run.edgesConsumed, 1));
                   });
        printPanel(name + " — total (fwd+coloc) %", level, mainPolicies,
                   [](const MetricsReport &r) {
                       return 100.0 * r.forwardFraction();
                   });
    }
    return 0;
}
