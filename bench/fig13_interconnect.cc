/**
 * @file
 * Figure 13 — interconnect-topology sensitivity under high contention:
 * interconnect occupancy (% of cycles with at least one transaction)
 * and total execution time (normalized to LAX on the bus) for LAX-Bus,
 * RELIEF-Bus, and RELIEF-Crossbar.
 * Paper result (Observation 10): RELIEF cuts interconnect occupancy by
 * up to 49% (avg 33%) vs LAX, and the crossbar barely helps — these
 * workloads are not interconnect-bound.
 */

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

MetricsReport
runWith(const std::string &mix, PolicyKind policy, FabricKind fabric)
{
    ExperimentConfig config;
    config.soc.policy = policy;
    config.soc.fabric = fabric;
    config.mix = mix;
    return runExperiment(config);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    Table table("Fig 13 — interconnect occupancy (%) and execution time "
                "(norm. to LAX-Bus), high contention");
    table.setHeader({"mix", "occ LAX-Bus", "occ RELIEF-Bus",
                     "occ RELIEF-XBar", "occ RELIEF-Ring",
                     "time RELIEF-Bus", "time RELIEF-XBar",
                     "time RELIEF-Ring"});

    std::vector<double> occ_lax, occ_bus, occ_xbar, occ_ring, time_bus,
        time_xbar, time_ring;
    for (const std::string &mix : mixesFor(Contention::High)) {
        MetricsReport lax = runWith(mix, PolicyKind::Lax, FabricKind::Bus);
        MetricsReport bus =
            runWith(mix, PolicyKind::Relief, FabricKind::Bus);
        MetricsReport xbar =
            runWith(mix, PolicyKind::Relief, FabricKind::Crossbar);
        MetricsReport ring =
            runWith(mix, PolicyKind::Relief, FabricKind::Ring);
        double tb = double(bus.execTime) / double(lax.execTime);
        double tx = double(xbar.execTime) / double(lax.execTime);
        double tr = double(ring.execTime) / double(lax.execTime);
        occ_lax.push_back(lax.fabricOccupancy * 100.0);
        occ_bus.push_back(bus.fabricOccupancy * 100.0);
        occ_xbar.push_back(xbar.fabricOccupancy * 100.0);
        occ_ring.push_back(ring.fabricOccupancy * 100.0);
        time_bus.push_back(tb);
        time_xbar.push_back(tx);
        time_ring.push_back(tr);
        table.addRow({mix, Table::num(lax.fabricOccupancy * 100.0),
                      Table::num(bus.fabricOccupancy * 100.0),
                      Table::num(xbar.fabricOccupancy * 100.0),
                      Table::num(ring.fabricOccupancy * 100.0),
                      Table::num(tb, 3), Table::num(tx, 3),
                      Table::num(tr, 3)});
    }
    table.addRow({"Gmean", Table::num(geomean(occ_lax)),
                  Table::num(geomean(occ_bus)),
                  Table::num(geomean(occ_xbar)),
                  Table::num(geomean(occ_ring)),
                  Table::num(geomean(time_bus), 3),
                  Table::num(geomean(time_xbar), 3),
                  Table::num(geomean(time_ring), 3)});
    table.emit(std::cout);

    double reduction = 1.0 - geomean(occ_bus) / geomean(occ_lax);
    std::cout << "\nRELIEF vs LAX interconnect occupancy: avg "
              << Table::num(reduction * 100.0) << " % lower\n";
    return 0;
}
