/**
 * @file
 * Figure 8 — percent of node deadlines met per mix and policy, for all
 * four contention levels. Paper result: RELIEF meets up to 70% more
 * node deadlines than HetSched under high contention (avg +14%) and
 * rarely meets fewer than the baselines.
 */

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 8: node deadlines met (%)\n\n";
    for (Contention level : allLevels) {
        printPanel(std::string("Fig 8 (") + contentionName(level) + ")",
                   level, mainPolicies, [](const MetricsReport &r) {
                       return 100.0 * r.run.nodeDeadlineFraction();
                   });
    }

    // Headline: average improvement over HetSched under high contention.
    std::vector<double> ratios;
    for (const std::string &mix : mixesFor(Contention::High)) {
        double relief = run(mix, PolicyKind::Relief, Contention::High)
                            .run.nodeDeadlineFraction();
        double hetsched = run(mix, PolicyKind::HetSched, Contention::High)
                              .run.nodeDeadlineFraction();
        if (hetsched > 0.0)
            ratios.push_back(relief / hetsched);
    }
    std::cout << "RELIEF vs HetSched node deadlines met (high "
                 "contention): avg "
              << Table::num((geomean(ratios) - 1.0) * 100.0)
              << " % more\n";
    return 0;
}
