/**
 * @file
 * Figure 6 — main-memory and scratchpad energy under high contention,
 * normalized to LAX. Paper result: RELIEF cuts DRAM energy by up to
 * 18% (avg 7%) and SPM energy by up to 8% (avg 4%) vs HetSched.
 */

#include "common.hh"

using namespace relief;
using namespace relief::bench;

int
main()
{
    setInformEnabled(false);
    std::cout << "Figure 6: memory energy under high contention, "
                 "normalized to LAX\n\n";

    Table dram_table("Fig 6 — DRAM energy (norm. to LAX)");
    Table spm_table("Fig 6 — SPM energy (norm. to LAX)");
    std::vector<std::string> header = {"mix"};
    for (PolicyKind policy : mainPolicies)
        header.push_back(policyName(policy));
    dram_table.setHeader(header);
    spm_table.setHeader(header);

    std::map<PolicyKind, std::vector<double>> dram_norm, spm_norm;
    for (const std::string &mix : mixesFor(Contention::High)) {
        MetricsReport lax = run(mix, PolicyKind::Lax, Contention::High);
        std::vector<std::string> dram_row = {mix}, spm_row = {mix};
        for (PolicyKind policy : mainPolicies) {
            MetricsReport r = run(mix, policy, Contention::High);
            double d = r.dramEnergyPJ / lax.dramEnergyPJ;
            double s = r.spmEnergyPJ / lax.spmEnergyPJ;
            dram_norm[policy].push_back(d);
            spm_norm[policy].push_back(s);
            dram_row.push_back(Table::num(d, 3));
            spm_row.push_back(Table::num(s, 3));
        }
        dram_table.addRow(dram_row);
        spm_table.addRow(spm_row);
    }
    std::vector<std::string> dg = {"Gmean"}, sg = {"Gmean"};
    for (PolicyKind policy : mainPolicies) {
        dg.push_back(Table::num(geomean(dram_norm[policy]), 3));
        sg.push_back(Table::num(geomean(spm_norm[policy]), 3));
    }
    dram_table.addRow(dg);
    spm_table.addRow(sg);
    dram_table.emit(std::cout);
    std::cout << "\n";
    spm_table.emit(std::cout);

    double relief_vs_hetsched =
        geomean(dram_norm[PolicyKind::Relief]) /
        geomean(dram_norm[PolicyKind::HetSched]);
    std::cout << "\nRELIEF vs HetSched DRAM energy: "
              << Table::num((1.0 - relief_vs_hetsched) * 100.0)
              << " % lower on average\n";
    return 0;
}
