/**
 * @file
 * Shared plumbing for the experiment benches: run a mix under a policy
 * at a contention level, and emit paper-style panels (one table per
 * contention level, one column per policy, gmean row).
 */

#ifndef RELIEF_BENCH_COMMON_HH
#define RELIEF_BENCH_COMMON_HH

#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/relief.hh"

namespace relief::bench
{

/** Run @p mix under @p policy at @p level (continuous loops for 50 ms). */
inline MetricsReport
run(const std::string &mix, PolicyKind policy, Contention level,
    const SocConfig &base = {})
{
    ExperimentConfig config;
    config.soc = base;
    config.soc.policy = policy;
    config.mix = mix;
    config.continuous = level == Contention::Continuous;
    config.timeLimit = fromMs(50.0);
    return runExperiment(config);
}

/** Extracts one plotted value from a finished run. */
using Metric = std::function<double(const MetricsReport &)>;

/**
 * Print one paper panel: rows are the level's mixes plus a Gmean row,
 * columns are @p policies, values come from @p metric (already scaled
 * for display).
 */
inline void
printPanel(const std::string &title, Contention level,
           const std::vector<PolicyKind> &policies, const Metric &metric,
           int precision = 1, const SocConfig &base = {})
{
    Table table(title);
    std::vector<std::string> header = {"mix"};
    for (PolicyKind policy : policies)
        header.push_back(policyName(policy));
    table.setHeader(header);

    std::map<PolicyKind, std::vector<double>> values;
    for (const std::string &mix : mixesFor(level)) {
        std::vector<std::string> row = {mix};
        for (PolicyKind policy : policies) {
            double v = metric(run(mix, policy, level, base));
            values[policy].push_back(v);
            row.push_back(Table::num(v, precision));
        }
        table.addRow(row);
    }
    std::vector<std::string> gmean_row = {"Gmean"};
    for (PolicyKind policy : policies)
        gmean_row.push_back(Table::num(geomean(values[policy]),
                                       precision));
    table.addRow(gmean_row);
    table.emit(std::cout);
    std::cout << "\n";
}

/** The four contention levels in figure order (panels a-d). */
inline const std::vector<Contention> allLevels = {
    Contention::Low, Contention::Medium, Contention::High,
    Contention::Continuous};

} // namespace relief::bench

#endif // RELIEF_BENCH_COMMON_HH
