/**
 * @file
 * Shared plumbing for the experiment benches: run a mix under a policy
 * at a contention level, and emit paper-style panels (one table per
 * contention level, one column per policy, gmean row).
 */

#ifndef RELIEF_BENCH_COMMON_HH
#define RELIEF_BENCH_COMMON_HH

#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/relief.hh"

namespace relief::bench
{

/**
 * Worker threads for the figure benches, from RELIEF_BENCH_JOBS
 * (0 = one per hardware thread; default 1 = serial). Each (mix,
 * policy) cell of a panel is an independent simulation, so the
 * printed tables are identical for any value; only wall-clock
 * changes.
 */
inline int
benchJobs()
{
    static const int jobs = [] {
        const char *env = std::getenv("RELIEF_BENCH_JOBS");
        if (!env || !*env)
            return 1;
        int v = std::atoi(env);
        return v <= 0 ? defaultParallelJobs() : v;
    }();
    return jobs;
}

/** Run @p mix under @p policy at @p level (continuous loops for 50 ms). */
inline MetricsReport
run(const std::string &mix, PolicyKind policy, Contention level,
    const SocConfig &base = {})
{
    ExperimentConfig config;
    config.soc = base;
    config.soc.policy = policy;
    config.mix = mix;
    config.continuous = level == Contention::Continuous;
    config.timeLimit = continuousWindow;
    return runExperiment(config);
}

/** Extracts one plotted value from a finished run. */
using Metric = std::function<double(const MetricsReport &)>;

/**
 * Print one paper panel: rows are the level's mixes plus a Gmean row,
 * columns are @p policies, values come from @p metric (already scaled
 * for display).
 */
inline void
printPanel(const std::string &title, Contention level,
           const std::vector<PolicyKind> &policies, const Metric &metric,
           int precision = 1, const SocConfig &base = {})
{
    Table table(title);
    std::vector<std::string> header = {"mix"};
    for (PolicyKind policy : policies)
        header.push_back(policyName(policy));
    table.setHeader(header);

    // Simulate every (mix, policy) cell first — on benchJobs() worker
    // threads when RELIEF_BENCH_JOBS asks for them — then lay out the
    // table serially in panel order, so output is job-count-invariant.
    const std::vector<std::string> mixes = mixesFor(level);
    std::vector<std::pair<std::size_t, std::size_t>> cells;
    for (std::size_t m = 0; m < mixes.size(); ++m)
        for (std::size_t p = 0; p < policies.size(); ++p)
            cells.emplace_back(m, p);
    std::vector<double> grid(cells.size());
    parallelFor(cells.size(), benchJobs(), [&](std::size_t i) {
        grid[i] = metric(run(mixes[cells[i].first],
                             policies[cells[i].second], level, base));
    });

    std::map<PolicyKind, std::vector<double>> values;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        std::vector<std::string> row = {mixes[m]};
        for (std::size_t p = 0; p < policies.size(); ++p) {
            double v = grid[m * policies.size() + p];
            values[policies[p]].push_back(v);
            row.push_back(Table::num(v, precision));
        }
        table.addRow(row);
    }
    std::vector<std::string> gmean_row = {"Gmean"};
    for (PolicyKind policy : policies)
        gmean_row.push_back(Table::num(geomean(values[policy]),
                                       precision));
    table.addRow(gmean_row);
    table.emit(std::cout);
    std::cout << "\n";
}

/** The four contention levels in figure order (panels a-d). */
inline const std::vector<Contention> allLevels = {
    Contention::Low, Contention::Medium, Contention::High,
    Contention::Continuous};

} // namespace relief::bench

#endif // RELIEF_BENCH_COMMON_HH
