/**
 * @file
 * Figure 11 — performance impact of the memory predictors in
 * isolation and combined, normalized to the Max predictors, under high
 * contention with RELIEF: node deadlines met with (1) predicted
 * bandwidth only, (2) predicted data movement only, (3) both.
 * Paper result (Observation 8): all bars ~1.0 — RELIEF does not
 * benefit from dynamic memory-time prediction.
 */

#include <iostream>

#include "core/relief.hh"

using namespace relief;

namespace
{

double
deadlinesMet(const std::string &mix, BwPredictorKind bw,
             DmPredictorKind dm)
{
    ExperimentConfig config;
    config.soc.policy = PolicyKind::Relief;
    config.soc.bwPredictor = bw;
    config.soc.dmPredictor = dm;
    config.mix = mix;
    return double(runExperiment(config).run.nodeDeadlinesMet);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    Table table("Fig 11 — node deadlines met, normalized to Max "
                "predictors (RELIEF, high contention)");
    table.setHeader({"mix", "Pred. BW", "Pred. DM", "Pred. BW + DM"});

    std::vector<double> bw_all, dm_all, both_all;
    for (const std::string &mix : mixesFor(Contention::High)) {
        double base = deadlinesMet(mix, BwPredictorKind::Max,
                                   DmPredictorKind::Max);
        if (base == 0.0)
            base = 1.0;
        double bw = deadlinesMet(mix, BwPredictorKind::Average,
                                 DmPredictorKind::Max) /
                    base;
        double dm = deadlinesMet(mix, BwPredictorKind::Max,
                                 DmPredictorKind::Graph) /
                    base;
        double both = deadlinesMet(mix, BwPredictorKind::Average,
                                   DmPredictorKind::Graph) /
                      base;
        bw_all.push_back(bw);
        dm_all.push_back(dm);
        both_all.push_back(both);
        table.addRow({mix, Table::num(bw, 3), Table::num(dm, 3),
                      Table::num(both, 3)});
    }
    table.addRow({"Gmean", Table::num(geomean(bw_all), 3),
                  Table::num(geomean(dm_all), 3),
                  Table::num(geomean(both_all), 3)});
    table.emit(std::cout);
    return 0;
}
