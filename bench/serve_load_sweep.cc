/**
 * @file
 * serve_load_sweep — open-loop load sweep across the saturation knee.
 *
 * The first apples-to-apples comparison of RELIEF against the baseline
 * policies under serving-style traffic: for each scheduling policy,
 * sweep the offered load across multiples of the platform's measured
 * capacity (default 0.2x-1.4x), run one seeded open-loop serving
 * experiment per (policy, load) point, and emit one relief-serve-v1
 * JSON document with per-class p50/p95/p99 latency, goodput, miss
 * rate, and shed rate per point, plus the saturation knee per policy
 * (the lowest load whose miss + shed rate exceeds 10%).
 *
 * Capacity is measured once with a closed-loop continuous run under
 * FCFS (policy-neutral), so every policy sees identical absolute
 * request rates. Arrival schedules are derived from (seed, load
 * index) only — every policy at a given load serves the exact same
 * request stream.
 *
 * Determinism: the document contains no host timing; the same seed
 * produces a bit-identical file for any --jobs value (CI diffs
 * --jobs 1 against --jobs 2).
 *
 * Examples:
 *
 *   serve_load_sweep                        # full sweep -> BENCH_serve.json
 *   serve_load_sweep --smoke --jobs 2       # CI: 5 loads, 2 policies, 10 ms
 *   serve_load_sweep --policies RELIEF,LAX --loads 0.5,1.0,1.5
 *
 * Flags:
 *   --out FILE       output path (default BENCH_serve.json)
 *   --policies LIST  comma-separated policy names (default the six
 *                    headline policies)
 *   --loads LIST     offered-load multipliers (default
 *                    0.2,0.4,0.6,0.8,1.0,1.2,1.4)
 *   --horizon-ms X   per-run measurement window (default 50)
 *   --arrival KIND   poisson | bursty (default poisson)
 *   --admission KIND admit-all | queue-cap | laxity (default laxity)
 *   --queue-cap N    queue-cap: in-system cap (default 64)
 *   --seed N         master seed (default 1)
 *   --jobs N         sweep points on N worker threads (0 = one per
 *                    hardware thread); results are jobs-invariant
 *   --smoke          tiny sweep for CI: FCFS+RELIEF, 5 loads, 30 ms
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hh"
#include "core/relief.hh"
#include "core/rng.hh"
#include "serve/server.hh"
#include "sim/build_info.hh"
#include "stats/json.hh"

using namespace relief;

namespace
{

std::vector<std::string>
splitCsv(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream in(list);
    std::string item;
    while (std::getline(in, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Miss + shed rate past which a point counts as saturated. */
constexpr double kneeThreshold = 0.10;

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_serve.json";
    std::vector<std::string> policies;
    for (PolicyKind kind : mainPolicies)
        policies.push_back(policyName(kind));
    std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4};
    double horizon_ms = toMs(continuousWindow);
    ArrivalKind arrival = ArrivalKind::Poisson;
    AdmissionConfig admission;
    admission.kind = AdmissionKind::Laxity;
    std::uint64_t seed = 1;
    int jobs = 1;
    bool smoke = false;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto need_value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("flag ", arg, " needs a value");
                return argv[++i];
            };
            if (arg == "--out") {
                out_path = need_value();
            } else if (arg == "--policies") {
                policies = splitCsv(need_value());
            } else if (arg == "--loads") {
                loads.clear();
                for (const std::string &item : splitCsv(need_value())) {
                    double load = std::atof(item.c_str());
                    if (load <= 0.0)
                        fatal("--loads needs positive multipliers");
                    loads.push_back(load);
                }
            } else if (arg == "--horizon-ms") {
                horizon_ms = std::atof(need_value().c_str());
                if (horizon_ms <= 0.0)
                    fatal("--horizon-ms needs a positive value");
            } else if (arg == "--arrival") {
                arrival = arrivalFromName(need_value());
                if (arrival == ArrivalKind::Trace)
                    fatal("the sweep needs a stochastic arrival "
                          "process (poisson | bursty)");
            } else if (arg == "--admission") {
                admission.kind = admissionFromName(need_value());
            } else if (arg == "--queue-cap") {
                admission.queueCap = std::atoi(need_value().c_str());
            } else if (arg == "--seed") {
                seed = std::uint64_t(std::atoll(need_value().c_str()));
            } else if (arg == "--jobs") {
                jobs = std::atoi(need_value().c_str());
                if (jobs < 0)
                    fatal("--jobs needs a non-negative value");
                if (jobs == 0)
                    jobs = defaultParallelJobs();
            } else if (arg == "--smoke") {
                smoke = true;
                policies = {policyName(PolicyKind::Fcfs),
                            policyName(PolicyKind::Relief)};
                loads = {0.25, 0.5, 0.75, 1.0, 1.25};
                horizon_ms = 30.0;
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "usage: serve_load_sweep [--out FILE] "
                             "[--policies LIST] [--loads LIST] "
                             "[--horizon-ms X] [--arrival KIND] "
                             "[--admission KIND] [--queue-cap N] "
                             "[--seed N] [--jobs N] [--smoke]\n";
                return 0;
            } else {
                fatal("unknown flag '", arg, "'");
            }
        }

        std::vector<PolicyKind> policy_kinds;
        for (const std::string &name : policies)
            policy_kinds.push_back(policyFromName(name));
        if (policy_kinds.empty() || loads.empty())
            fatal("need at least one policy and one load point");

        // Calibrate once; every sweep point shares the result.
        SocConfig base_soc;
        AppConfig base_app;
        double capacity_rps = measureCapacityRps(base_soc, base_app);
        std::cout << "measured capacity: "
                  << Table::num(capacity_rps, 1)
                  << " requests/s (closed-loop FCFS, all five apps)\n";

        // The sweep matrix: loads major, policies minor. Arrival seeds
        // derive from the load index only, so every policy at a load
        // serves the identical request stream.
        struct Point
        {
            std::size_t load = 0;
            std::size_t policy = 0;
        };
        std::vector<Point> points;
        for (std::size_t l = 0; l < loads.size(); ++l)
            for (std::size_t p = 0; p < policy_kinds.size(); ++p)
                points.push_back({l, p});

        std::vector<ServeReport> reports(points.size());
        parallelFor(points.size(), jobs, [&](std::size_t i) {
            ServeConfig config;
            config.soc = base_soc;
            config.app = base_app;
            config.soc.policy = policy_kinds[points[i].policy];
            config.arrival.kind = arrival;
            config.arrival.ratePerSec =
                loads[points[i].load] * capacity_rps;
            config.admission = admission;
            config.horizon = fromMs(horizon_ms);
            config.seed = deriveSeed(seed, points[i].load);
            ServeDriver driver(config);
            reports[i] = driver.run();
        });

        for (std::size_t i = 0; i < points.size(); ++i) {
            const ServeReport &report = reports[i];
            std::cout << "serve "
                      << policyName(policy_kinds[points[i].policy])
                      << " @ " << Table::num(loads[points[i].load], 2)
                      << "x: goodput "
                      << Table::num(report.total.goodputRps(
                                        report.horizon), 1)
                      << " rps, p99 "
                      << Table::num(
                             report.total.latencyMs.quantile(0.99), 2)
                      << " ms, miss "
                      << Table::num(report.total.missRate() * 100, 1)
                      << "%, shed "
                      << Table::num(report.total.shedRate() * 100, 1)
                      << "%\n";
        }

        // Saturation knee per policy: the lowest swept load whose
        // miss + shed rate crosses the threshold.
        std::vector<double> knees(policy_kinds.size(), 0.0);
        std::vector<bool> saturated(policy_kinds.size(), false);
        for (std::size_t p = 0; p < policy_kinds.size(); ++p) {
            for (std::size_t l = 0; l < loads.size(); ++l) {
                const ServeReport &report =
                    reports[l * policy_kinds.size() + p];
                double lost = report.total.missRate() +
                              report.total.shedRate();
                if (lost > kneeThreshold) {
                    knees[p] = loads[l];
                    saturated[p] = true;
                    break;
                }
            }
        }

        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write ", out_path);
        // No --jobs or host timing in the document: the same seed must
        // produce a bit-identical file for any worker count.
        out << "{\n  \"schema\": \"relief-serve-v1\",\n"
            << "  \"build_info\": ";
        writeBuildInfoJson(out, 2);
        out << ",\n"
            << "  \"seed\": " << seed << ",\n"
            << "  \"horizon_ms\": " << jsonNumber(horizon_ms) << ",\n"
            << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
            << "  \"capacity_rps\": " << jsonNumber(capacity_rps)
            << ",\n  \"runs\": [";
        for (std::size_t i = 0; i < points.size(); ++i) {
            out << (i ? ",\n    " : "\n    ");
            writeServeRunJson(
                out, reports[i],
                policyName(policy_kinds[points[i].policy]),
                admissionKindName(admission.kind),
                arrivalKindName(arrival), loads[points[i].load],
                loads[points[i].load] * capacity_rps, 4);
        }
        out << "\n  ],\n  \"saturation\": [";
        for (std::size_t p = 0; p < policy_kinds.size(); ++p) {
            out << (p ? ",\n    " : "\n    ") << "{\"policy\": \""
                << jsonEscape(policyName(policy_kinds[p]))
                << "\", \"knee_load\": ";
            if (saturated[p])
                out << jsonNumber(knees[p]);
            else
                out << "null";
            out << "}";
        }
        out << "\n  ]\n}\n";
        std::cout << "serve JSON written to " << out_path << "\n";
    } catch (const FatalError &err) {
        std::cerr << err.what() << "\n";
        return 1;
    }
    return 0;
}
