/**
 * @file
 * Ablations of RELIEF's design choices (beyond the paper's figures,
 * motivated by its Sections III and VII):
 *
 *  1. feasibility check ON vs OFF — greedy promotion wins a few more
 *     forwards but misses deadlines and hurts fairness; is_feasible()
 *     is what makes promotion safe;
 *  2. laxity distribution — RELIEF over plain least-laxity (the paper)
 *     vs RELIEF over HetSched's SDR sub-deadlines (the Section VII
 *     future-work combination, implemented here as RELIEF-HS);
 *  3. scratchpad partition count — forwarding needs live producer
 *     data; fewer partitions mean earlier overwrites and fewer
 *     forwards.
 *
 * All runs: high-contention triples, 50 ms cap.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>

#include "core/relief.hh"

using namespace relief;

namespace
{

struct Variant
{
    std::string name;
    SocConfig config;
};

struct Row
{
    double fwdPct = 0.0;
    double deadlinesPct = 0.0;
    double worstSlowdown = 0.0;
    double dramMB = 0.0;
};

Row
runVariant(const SocConfig &config, const std::string &mix)
{
    ExperimentConfig experiment;
    experiment.soc = config;
    experiment.mix = mix;
    MetricsReport r = runExperiment(experiment);
    Row row;
    row.fwdPct = 100.0 * r.forwardFraction();
    row.deadlinesPct = 100.0 * r.run.nodeDeadlineFraction();
    for (const AppOutcome &app : r.apps) {
        row.worstSlowdown = std::max(
            row.worstSlowdown, app.starved() ? 99.0 : app.maxSlowdown());
    }
    row.dramMB = double(r.dramBytes) / (1024.0 * 1024.0);
    return row;
}

} // namespace

int
main()
{
    setInformEnabled(false);

    std::vector<Variant> variants;
    {
        Variant v{"RELIEF", {}};
        v.config.policy = PolicyKind::Relief;
        variants.push_back(v);
    }
    {
        Variant v{"RELIEF-greedy (no is_feasible)", {}};
        v.config.policy = PolicyKind::Relief;
        v.config.reliefFeasibilityCheck = false;
        variants.push_back(v);
    }
    {
        Variant v{"RELIEF-HS (SDR laxity)", {}};
        v.config.policy = PolicyKind::ReliefHetSched;
        variants.push_back(v);
    }
    {
        Variant v{"RELIEF, 2 SPM partitions", {}};
        v.config.policy = PolicyKind::Relief;
        v.config.spmPartitions = 2;
        variants.push_back(v);
    }
    {
        Variant v{"LAX (reference)", {}};
        v.config.policy = PolicyKind::Lax;
        variants.push_back(v);
    }
    {
        // The paper's Introduction motivation: distributed per-
        // accelerator management has no global task-mapping view, so
        // it cannot exploit forwarding hardware at all — modeled as
        // arrival-order dispatch with forwarding disabled.
        Variant v{"Distributed (FCFS, no fwd)", {}};
        v.config.policy = PolicyKind::Fcfs;
        v.config.manager.forwardingEnabled = false;
        variants.push_back(v);
    }

    for (const char *metric :
         {"forwards+colocations %", "node deadlines met %",
          "worst app slowdown", "DRAM traffic (MiB)"}) {
        Table table(std::string("Ablation — ") + metric);
        std::vector<std::string> header = {"mix"};
        for (const Variant &v : variants)
            header.push_back(v.name);
        table.setHeader(header);

        std::map<std::string, std::vector<double>> agg;
        for (const std::string &mix : mixesFor(Contention::High)) {
            std::vector<std::string> row = {mix};
            for (const Variant &v : variants) {
                Row r = runVariant(v.config, mix);
                double value = 0.0;
                if (!std::strcmp(metric, "forwards+colocations %"))
                    value = r.fwdPct;
                else if (!std::strcmp(metric, "node deadlines met %"))
                    value = r.deadlinesPct;
                else if (!std::strcmp(metric, "worst app slowdown"))
                    value = r.worstSlowdown;
                else
                    value = r.dramMB;
                agg[v.name].push_back(value);
                row.push_back(Table::num(value, 2));
            }
            table.addRow(row);
        }
        std::vector<std::string> gmean_row = {"Gmean"};
        for (const Variant &v : variants)
            gmean_row.push_back(Table::num(geomean(agg[v.name]), 2));
        table.addRow(gmean_row);
        table.emit(std::cout);
        std::cout << "\n";
    }
    return 0;
}
