#!/usr/bin/env python3
"""Maintain and check the BENCH_HISTORY.jsonl performance trajectory.

Each `append` distills one relief-bench-v1 document (timestamp,
build_info, per-run events/s and coverage) or relief-kernels-v1
document (per-kernel SIMD throughput and speedup) into a single JSONL
line, so the history stays a flat, diffable file that any tooling can
read line by line. `check` then flags step regressions: for every
(mix, policy) events/s series and every (kernel, isa) throughput
series, the newest value is compared against the median of the
preceding window — the same noise discipline relief_compare applies
across repeat runs (docs/performance.md § noise-aware gating).

Usage:
  bench_history.py append BENCH.json [--history FILE] [--note STR]
  bench_history.py check [--history FILE] [--window N]
                         [--max-drop-pct P] [--min-entries N]

`check` exits 2 when any series regressed, 0 otherwise — the same
contract as relief_compare --diff, so CI treats them alike.

Only the Python standard library is used.
"""

import argparse
import json
import statistics
import sys
import time

DEFAULT_HISTORY = "BENCH_HISTORY.jsonl"


def load_history(path):
    entries = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(json.loads(line))
                except json.JSONDecodeError as err:
                    sys.exit(f"{path}:{lineno}: bad JSONL line: {err}")
    except FileNotFoundError:
        pass
    return entries


def distill_kernels(doc, note):
    entry = {
        "timestamp": int(time.time()),
        "schema": "relief-kernels-v1",
        "build_info": doc.get("build_info", {}),
        "smoke": doc.get("smoke"),
        "isa": doc.get("isa"),
        "inject_spin_ns": 0,
        "geomean_speedup": doc.get("geomean_speedup"),
        "runs": [],
    }
    if note:
        entry["note"] = note
    for run in doc.get("runs", []):
        entry["runs"].append({
            "kernel": run["kernel"],
            "unit": run["unit"],
            "scalar": run["scalar"],
            "simd": run["simd"],
            "speedup": run["speedup"],
        })
    return entry


def distill(doc, note):
    if doc.get("schema") == "relief-kernels-v1":
        return distill_kernels(doc, note)
    if doc.get("schema") != "relief-bench-v1":
        sys.exit(
            "append expects a relief-bench-v1 or relief-kernels-v1 "
            f"document, got schema {doc.get('schema')!r}"
        )
    entry = {
        "timestamp": int(time.time()),
        "build_info": doc.get("build_info", {}),
        "jobs": doc.get("jobs"),
        "smoke": doc.get("smoke"),
        "limit_ms": doc.get("limit_ms"),
        "inject_spin_ns": doc.get("inject_spin_ns", 0),
        "runs": [],
    }
    if note:
        entry["note"] = note
    for run in doc.get("runs", []):
        distilled = {
            "mix": run["mix"],
            "policy": run["policy"],
            "events_per_sec": run["events_per_sec"],
            "host_wall_s": run["host_wall_s"],
            "sim_events": run["sim_events"],
        }
        hostprof = run.get("hostprof")
        if hostprof:
            distilled["hostprof_coverage"] = hostprof.get("coverage")
        entry["runs"].append(distilled)
    return entry


def cmd_append(args):
    try:
        with open(args.bench, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"cannot read {args.bench}: {err}")
    entry = distill(doc, args.note)
    if entry["inject_spin_ns"]:
        # A deliberately slowed run (CI's breach-path demonstration)
        # would poison the trajectory baseline.
        print(
            f"skipping append: {args.bench} was produced with "
            f"--inject-spin-ns {entry['inject_spin_ns']}"
        )
        return 0
    with open(args.history, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    sha = entry["build_info"].get("git_sha", "unknown")
    print(
        f"appended {len(entry['runs'])} runs @ {sha} to {args.history}"
    )
    return 0


def series(entries):
    """{series key: {"unit", "scale", "values" in history order}}.

    Bench entries contribute one (mix, policy) events/s series per
    run; kernels entries contribute one (kernel, isa) SIMD-throughput
    series per run. Units only affect how `check` prints values.
    """
    out = {}

    def add(key, value, unit, scale):
        slot = out.setdefault(key, {"unit": unit, "scale": scale,
                                    "values": []})
        slot["values"].append(value)

    for entry in entries:
        for run in entry.get("runs", []):
            if "kernel" in run:
                add((run["kernel"], entry.get("isa", "?")),
                    run["simd"], run.get("unit", "Melem/s"), 1.0)
            else:
                add((run["mix"], run["policy"]),
                    run["events_per_sec"], "M ev/s", 1e6)
    return out


def cmd_check(args):
    entries = load_history(args.history)
    if len(entries) < args.min_entries:
        print(
            f"{args.history}: {len(entries)} entries "
            f"(< {args.min_entries}); nothing to gate yet"
        )
        return 0
    regressed = []
    for (first, second), slot in sorted(series(entries).items()):
        values = slot["values"]
        if len(values) < args.min_entries:
            continue
        latest = values[-1]
        window = values[-(args.window + 1):-1]
        baseline = statistics.median(window)
        if baseline <= 0:
            continue
        drop_pct = (baseline - latest) / baseline * 100.0
        verdict = "REGRESSED" if drop_pct > args.max_drop_pct else "ok"
        unit, scale = slot["unit"], slot["scale"]
        print(
            f"{first}/{second}: latest {latest / scale:.2f} {unit} vs "
            f"median-of-{len(window)} {baseline / scale:.2f} {unit} "
            f"({drop_pct:+.1f}% drop) {verdict}"
        )
        if verdict == "REGRESSED":
            regressed.append(f"{first}/{second}")
    if regressed:
        print(
            f"step regression in {len(regressed)} series: "
            + ", ".join(regressed)
        )
        return 2
    print("no step regressions")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="append one bench run")
    p_append.add_argument(
        "bench", help="relief-bench-v1 or relief-kernels-v1 JSON file")
    p_append.add_argument("--history", default=DEFAULT_HISTORY)
    p_append.add_argument("--note", default="", help="free-form tag")
    p_append.set_defaults(func=cmd_append)

    p_check = sub.add_parser("check", help="flag step regressions")
    p_check.add_argument("--history", default=DEFAULT_HISTORY)
    p_check.add_argument(
        "--window", type=int, default=5,
        help="median window of preceding entries (default 5)")
    p_check.add_argument(
        "--max-drop-pct", type=float, default=25.0,
        help="events/s drop beyond this %% regresses (default 25)")
    p_check.add_argument(
        "--min-entries", type=int, default=2,
        help="series shorter than this are not gated (default 2)")
    p_check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
