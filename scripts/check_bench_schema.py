#!/usr/bin/env python3
"""Validate a relief benchmark JSON document.

Dispatches on the document's "schema" field and validates both formats
the benches emit:

  - relief-bench-v1  (tools/relief_bench, bench smoke)  — documented in
    docs/observability.md
  - relief-serve-v1  (bench/serve_load_sweep, tools/relief_serve) —
    documented in docs/serving.md
  - relief-trace-v1  (relief_serve --trace-json: tail-sampled request
    span trees) — documented in docs/serving.md
  - relief-pressure-v1 (relief_sim --pressure-report: the memory-
    pressure attribution ledger) — documented in docs/observability.md
  - relief-hostprof-v1 (relief_sim --host-profile: host wall-time
    attribution by category) — documented in docs/observability.md §11
  - relief-kernels-v1 (tools/relief_kernel_bench: per-kernel scalar
    vs SIMD throughput and bit-identity) — documented in
    docs/performance.md

Schema family v6: relief-kernels-v1 is new (the SIMD kernel engine's
microbenchmark document). v5 added the "build_info" provenance object
(git sha, compiler, build type, flags) every top-level document
carries, relief-bench-v1's "inject_spin_ns" and optional per-run
"hostprof" objects, and relief-hostprof-v1.

Dependency-free (Python standard library only) so CI and developers can
run it anywhere:

    scripts/check_bench_schema.py BENCH_relief.json
    scripts/check_bench_schema.py BENCH_serve.json
    scripts/check_bench_schema.py --self-test

Exits 0 when the document is schema-valid, 1 with a diagnostic per
violation otherwise. --self-test validates the checker itself against
embedded good and broken documents (run from ctest as
schema_checker_self_test).
"""

import json
import sys

BUCKETS = ("queue_wait", "manager", "dma_in", "compute", "dma_out",
           "dep_stall", "total")

RUN_FIELDS = {
    "mix": str,
    "policy": str,
    "host_wall_s": (int, float),
    "sim_ticks": int,
    "sim_events": int,
    "events_per_sec": (int, float),
    "dags_finished": int,
    "node_deadline_fraction": (int, float),
    "dag_deadline_fraction": (int, float),
    "critical_path_us": dict,
}

FRACTION_FIELDS = ("node_deadline_fraction", "dag_deadline_fraction")

BUILD_INFO_FIELDS = ("git_sha", "compiler_id", "compiler_version",
                     "build_type", "cxx_flags")

HOST_CATS = ("other", "sched", "dma", "mem", "interconnect", "kernels",
             "stats", "serve")

HOSTPROF_NS_BUCKETS = 40

# Coverage is emitted with ~6 significant digits; allow rounding slack
# when cross-checking it against the raw nanosecond counters.
COVERAGE_TOLERANCE = 1e-4


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def check_build_info(where, info, errors):
    """Validate the provenance stamp every v5 document carries."""
    if not isinstance(info, dict):
        errors.append("%s: expected a build_info object" % where)
        return
    for field in BUILD_INFO_FIELDS:
        value = info.get(field)
        if not isinstance(value, str) or not value:
            errors.append("%s.%s: expected a non-empty string, got %r"
                          % (where, field, value))
    extra = set(info) - set(BUILD_INFO_FIELDS)
    if extra:
        errors.append("%s: unknown keys %s" % (where, sorted(extra)))


def check_hostprof_body(where, hp, errors):
    """Validate the category/counter body shared by standalone
    relief-hostprof-v1 documents and per-run embedded "hostprof"
    objects of a relief-bench-v1 document."""

    def err(msg):
        errors.append(msg)

    if not isinstance(hp, dict):
        err("%s: expected an object" % where)
        return
    for field in ("total_wall_ns", "attributed_wall_ns"):
        if not is_count(hp.get(field)):
            err("%s.%s: expected a non-negative integer, got %r"
                % (where, field, hp.get(field)))
    coverage = hp.get("coverage")
    if not is_number(coverage) or not 0.0 <= coverage <= 1.0:
        err("%s.coverage: expected a number in [0, 1], got %r"
            % (where, coverage))

    cats = hp.get("categories")
    if not isinstance(cats, dict):
        err("%s.categories: expected an object" % where)
        return
    if tuple(cats) != HOST_CATS:
        err("%s.categories: expected exactly %s in order, got %s"
            % (where, list(HOST_CATS), list(cats)))
        return
    wall_sum = 0
    for name, cat in cats.items():
        cwhere = "%s.categories.%s" % (where, name)
        if not isinstance(cat, dict):
            err("%s: expected an object" % cwhere)
            continue
        for field in ("wall_ns", "events", "heap_allocs"):
            if not is_count(cat.get(field)):
                err("%s.%s: expected a non-negative integer, got %r"
                    % (cwhere, field, cat.get(field)))
        hist = cat.get("ns_hist")
        if not isinstance(hist, list) \
                or len(hist) != HOSTPROF_NS_BUCKETS \
                or not all(is_count(b) for b in hist):
            err("%s.ns_hist: expected %d non-negative integers"
                % (cwhere, HOSTPROF_NS_BUCKETS))
        elif is_count(cat.get("events")) and sum(hist) != cat["events"]:
            err("%s: ns_hist sums to %d but events is %d"
                % (cwhere, sum(hist), cat["events"]))
        if is_count(cat.get("wall_ns")):
            wall_sum += cat["wall_ns"]

    # Category consistency: the attributed total is exactly the sum of
    # per-category wall time, and coverage is its (clamped) share of
    # the total window.
    if is_count(hp.get("attributed_wall_ns")) \
            and hp["attributed_wall_ns"] != wall_sum:
        err("%s: attributed_wall_ns %d != per-category sum %d"
            % (where, hp["attributed_wall_ns"], wall_sum))
    if is_count(hp.get("total_wall_ns")) and hp["total_wall_ns"] > 0 \
            and is_count(hp.get("attributed_wall_ns")) \
            and is_number(coverage):
        expected = min(1.0, hp["attributed_wall_ns"]
                       / hp["total_wall_ns"])
        if abs(coverage - expected) > COVERAGE_TOLERANCE:
            err("%s.coverage: %r inconsistent with "
                "attributed/total (%r)" % (where, coverage, expected))


def check_hostprof(doc):
    errors = []
    check_build_info("build_info", doc.get("build_info"), errors)
    check_hostprof_body("hostprof", doc, errors)
    return errors


def check_bench(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    check_build_info("build_info", doc.get("build_info"), errors)
    if not isinstance(doc.get("limit_ms"), (int, float)) \
            or doc.get("limit_ms") <= 0:
        err("limit_ms: expected a positive number")
    if not isinstance(doc.get("smoke"), bool):
        err("smoke: expected a boolean")
    if not is_count(doc.get("inject_spin_ns")):
        err("inject_spin_ns: expected a non-negative integer, got %r"
            % (doc.get("inject_spin_ns"),))
    # "jobs" (worker threads used) arrived with the parallel runner;
    # tolerate its absence so older documents stay valid.
    if "jobs" in doc:
        jobs = doc["jobs"]
        if not is_count(jobs) or jobs < 1:
            err("jobs: expected a positive integer, got %r" % (jobs,))

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs: expected a non-empty array")
        return errors

    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not isinstance(run, dict):
            err("%s: expected an object" % where)
            continue
        for field, kind in RUN_FIELDS.items():
            value = run.get(field)
            # bool is an int subclass; reject it for numeric fields.
            if value is None or isinstance(value, bool) \
                    or not isinstance(value, kind):
                err("%s.%s: expected %s, got %r"
                    % (where, field, kind, value))
        for field in FRACTION_FIELDS:
            value = run.get(field)
            if is_number(value) and not 0.0 <= value <= 1.0:
                err("%s.%s: %r outside [0, 1]" % (where, field, value))
        for field in ("host_wall_s", "events_per_sec"):
            value = run.get(field)
            if is_number(value) and value < 0:
                err("%s.%s: %r is negative" % (where, field, value))

        if "hostprof" in run:
            check_hostprof_body("%s.hostprof" % where, run["hostprof"],
                                errors)

        cp = run.get("critical_path_us")
        if isinstance(cp, dict):
            for bucket in BUCKETS:
                value = cp.get(bucket)
                if not is_number(value):
                    err("%s.critical_path_us.%s: expected a number, "
                        "got %r" % (where, bucket, value))
                elif value < 0:
                    err("%s.critical_path_us.%s: %r is negative"
                        % (where, bucket, value))
            extra = set(cp) - set(BUCKETS)
            if extra:
                err("%s.critical_path_us: unknown keys %s"
                    % (where, sorted(extra)))
    return errors


SLO_COUNTERS = ("offered", "admitted", "shed", "rejected", "completed",
                "missed", "in_flight")

SLO_RATES = ("miss_rate", "shed_rate")

QUANTILES = ("mean", "p50", "p95", "p99", "max")


def check_slo(where, slo, errors):
    """Validate one per-class SLO object of a relief-serve-v1 run."""

    def err(msg):
        errors.append(msg)

    if not isinstance(slo, dict):
        err("%s: expected an object" % where)
        return
    if not isinstance(slo.get("name"), str) or not slo.get("name"):
        err("%s.name: expected a non-empty string" % where)
    for field in SLO_COUNTERS:
        if not is_count(slo.get(field)):
            err("%s.%s: expected a non-negative integer, got %r"
                % (where, field, slo.get(field)))
    if all(is_count(slo.get(f)) for f in SLO_COUNTERS):
        if slo["offered"] != slo["admitted"] + slo["shed"] \
                + slo["rejected"]:
            err("%s: offered != admitted + shed + rejected" % where)
        if slo["admitted"] != slo["completed"] + slo["in_flight"]:
            err("%s: admitted != completed + in_flight" % where)
        if slo["missed"] > slo["completed"]:
            err("%s: missed > completed" % where)
    if not is_number(slo.get("goodput_rps")) or slo["goodput_rps"] < 0:
        err("%s.goodput_rps: expected a non-negative number" % where)
    for field in SLO_RATES:
        value = slo.get(field)
        if not is_number(value) or not 0.0 <= value <= 1.0:
            err("%s.%s: expected a number in [0, 1], got %r"
                % (where, field, value))
    for field in ("latency_ms", "time_in_system_ms"):
        dist = slo.get(field)
        if not isinstance(dist, dict):
            err("%s.%s: expected an object" % (where, field))
            continue
        for q in QUANTILES:
            value = dist.get(q)
            if not is_number(value) or value < 0:
                err("%s.%s.%s: expected a non-negative number, got %r"
                    % (where, field, q, value))
        if all(is_number(dist.get(q)) for q in QUANTILES) \
                and not (dist["p50"] <= dist["p95"] <= dist["p99"]
                         <= dist["max"]):
            err("%s.%s: quantiles are not monotonic" % (where, field))


def check_alerts(where, alerts, errors):
    """Validate one run's burn-rate "alerts" array (serve/alerts.hh)."""

    def err(msg):
        errors.append(msg)

    if not isinstance(alerts, list):
        err("%s: expected an array" % where)
        return
    for i, entry in enumerate(alerts):
        ewhere = "%s[%d]" % (where, i)
        if not isinstance(entry, dict):
            err("%s: expected an object" % ewhere)
            continue
        if not isinstance(entry.get("class"), str) \
                or not entry.get("class"):
            err("%s.class: expected a non-empty string" % ewhere)
        for field in ("opens", "closes"):
            if not is_count(entry.get(field)):
                err("%s.%s: expected a non-negative integer, got %r"
                    % (ewhere, field, entry.get(field)))
        if not isinstance(entry.get("active"), bool):
            err("%s.active: expected a boolean" % ewhere)
        elif is_count(entry.get("opens")) and is_count(entry.get("closes")):
            # An alert is a strict open/close alternation starting with
            # an open, so it is still active iff opens == closes + 1.
            expected = entry["closes"] + (1 if entry["active"] else 0)
            if entry["opens"] != expected:
                err("%s: opens/closes inconsistent with active" % ewhere)
        for field in ("active_ms", "final_fast_burn", "final_slow_burn"):
            value = entry.get(field)
            if not is_number(value) or value < 0:
                err("%s.%s: expected a non-negative number, got %r"
                    % (ewhere, field, value))
        events = entry.get("events")
        if not isinstance(events, list):
            err("%s.events: expected an array" % ewhere)
            continue
        for j, event in enumerate(events):
            vwhere = "%s.events[%d]" % (ewhere, j)
            if not isinstance(event, dict):
                err("%s: expected an object" % vwhere)
                continue
            if not is_number(event.get("t_ms")) or event["t_ms"] < 0:
                err("%s.t_ms: expected a non-negative number" % vwhere)
            if not isinstance(event.get("open"), bool):
                err("%s.open: expected a boolean" % vwhere)
            for field in ("fast_burn", "slow_burn"):
                value = event.get(field)
                if not is_number(value) or value < 0:
                    err("%s.%s: expected a non-negative number, got %r"
                        % (vwhere, field, value))


def check_serve(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    check_build_info("build_info", doc.get("build_info"), errors)
    if not is_count(doc.get("seed")):
        err("seed: expected a non-negative integer")
    if not is_number(doc.get("horizon_ms")) or doc.get("horizon_ms") <= 0:
        err("horizon_ms: expected a positive number")
    if not isinstance(doc.get("smoke"), bool):
        err("smoke: expected a boolean")
    capacity = doc.get("capacity_rps", None)
    if capacity is not None and (not is_number(capacity)
                                 or capacity <= 0):
        err("capacity_rps: expected a positive number or null")

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs: expected a non-empty array")
        return errors

    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not isinstance(run, dict):
            err("%s: expected an object" % where)
            continue
        for field in ("policy", "admission", "arrival"):
            if not isinstance(run.get(field), str) or not run.get(field):
                err("%s.%s: expected a non-empty string" % (where, field))
        # offered_load 0 marks an absolute-rate run (tools/relief_serve).
        if not is_number(run.get("offered_load")) \
                or run["offered_load"] < 0:
            err("%s.offered_load: expected a non-negative number"
                % where)
        if not is_number(run.get("rate_rps")) or run["rate_rps"] <= 0:
            err("%s.rate_rps: expected a positive number" % where)
        check_slo("%s.total" % where, run.get("total"), errors)
        classes = run.get("classes")
        if not isinstance(classes, list) or not classes:
            err("%s.classes: expected a non-empty array" % where)
            continue
        for j, slo in enumerate(classes):
            check_slo("%s.classes[%d]" % (where, j), slo, errors)
        # "alerts" arrived with the burn-rate evaluator; tolerate its
        # absence so older documents stay valid.
        if "alerts" in run:
            check_alerts("%s.alerts" % where, run["alerts"], errors)
        # "pressure" arrived with the attribution ledger; likewise
        # optional for older documents.
        if "pressure" in run:
            pressure = run["pressure"]
            if not isinstance(pressure, list) or not pressure:
                err("%s.pressure: expected a non-empty array" % where)
                continue
            for j, entry in enumerate(pressure):
                pwhere = "%s.pressure[%d]" % (where, j)
                if not isinstance(entry, dict):
                    err("%s: expected an object" % pwhere)
                    continue
                if not isinstance(entry.get("class"), str) \
                        or not entry.get("class"):
                    err("%s.class: expected a non-empty string" % pwhere)
                check_pressure_slot(pwhere, entry, errors)
            if pressure and isinstance(pressure[0], dict) \
                    and pressure[0].get("class") != "default":
                err("%s.pressure[0]: expected the ledger's implicit "
                    "'default' class" % where)

    saturation = doc.get("saturation")
    if not isinstance(saturation, list):
        err("saturation: expected an array")
        return errors
    for i, entry in enumerate(saturation):
        where = "saturation[%d]" % i
        if not isinstance(entry, dict):
            err("%s: expected an object" % where)
            continue
        if not isinstance(entry.get("policy"), str):
            err("%s.policy: expected a string" % where)
        knee = entry.get("knee_load", None)
        if knee is not None and (not is_number(knee) or knee <= 0):
            err("%s.knee_load: expected a positive number or null"
                % where)
    return errors


SAMPLING_COUNTERS = ("offered", "admitted", "kept_ok", "kept_miss",
                     "kept_shed", "kept_rejected", "dropped")

OUTCOMES = ("ok", "miss", "shed", "rejected", "in_flight")

SPAN_KINDS = ("request", "admission", "node", "queue_wait", "dispatch",
              "dma_in", "compute", "dma_out")

# One sim tick is 1 ps = 1e-6 us; timestamps are rounded to ~9
# significant digits on export, so allow a loose microsecond slack.
SPAN_TOLERANCE_US = 0.001


def check_request_trace(where, req, errors):
    """Validate one request record of a relief-trace-v1 document."""

    def err(msg):
        errors.append(msg)

    if not isinstance(req, dict):
        err("%s: expected an object" % where)
        return
    if not is_count(req.get("id")):
        err("%s.id: expected a non-negative integer" % where)
    for field in ("class", "app"):
        if not isinstance(req.get(field), str) or not req.get(field):
            err("%s.%s: expected a non-empty string" % (where, field))
    outcome = req.get("outcome")
    if outcome not in OUTCOMES:
        err("%s.outcome: expected one of %s, got %r"
            % (where, OUTCOMES, outcome))
    for field in ("arrival_us", "finish_us", "deadline_us",
                  "latency_us"):
        value = req.get(field)
        if not is_number(value) or value < 0:
            err("%s.%s: expected a non-negative number, got %r"
                % (where, field, value))
    if is_number(req.get("arrival_us")) and is_number(req.get("finish_us")) \
            and req["finish_us"] < req["arrival_us"]:
        err("%s: finish_us before arrival_us" % where)

    buckets = req.get("buckets_us")
    if not isinstance(buckets, dict):
        err("%s.buckets_us: expected an object" % where)
    else:
        for bucket in BUCKETS:
            value = buckets.get(bucket)
            if not is_number(value) or value < 0:
                err("%s.buckets_us.%s: expected a non-negative number, "
                    "got %r" % (where, bucket, value))

    spans = req.get("spans")
    if not isinstance(spans, list) or not spans:
        err("%s.spans: expected a non-empty array" % where)
        return
    for j, span in enumerate(spans):
        swhere = "%s.spans[%d]" % (where, j)
        if not isinstance(span, dict):
            err("%s: expected an object" % swhere)
            return
        if span.get("kind") not in SPAN_KINDS:
            err("%s.kind: expected one of %s, got %r"
                % (swhere, SPAN_KINDS, span.get("kind")))
        parent = span.get("parent")
        if not isinstance(parent, int) or isinstance(parent, bool):
            err("%s.parent: expected an integer" % swhere)
            return
        if j == 0:
            if span.get("kind") != "request" or parent != -1:
                err("%s: spans[0] must be the 'request' root with "
                    "parent -1" % where)
        elif not 0 <= parent < j:
            err("%s.parent: %d not an earlier span index" % (swhere,
                                                             parent))
        for field in ("start_us", "end_us"):
            if not is_number(span.get(field)):
                err("%s.%s: expected a number" % (swhere, field))
                return
        if span["end_us"] < span["start_us"]:
            err("%s: end_us before start_us" % swhere)
        if j > 0 and 0 <= parent < j:
            outer = spans[parent]
            if is_number(outer.get("start_us")) \
                    and is_number(outer.get("end_us")) \
                    and (span["start_us"]
                         < outer["start_us"] - SPAN_TOLERANCE_US
                         or span["end_us"]
                         > outer["end_us"] + SPAN_TOLERANCE_US):
                err("%s: does not nest within its parent" % swhere)

    # The root's synchronous children (everything but the overlapping
    # asynchronous dma_out write-backs) are disjoint: their durations
    # sum to at most the root duration.
    root = spans[0]
    if is_number(root.get("start_us")) and is_number(root.get("end_us")):
        sync_sum = sum(
            s["end_us"] - s["start_us"] for s in spans[1:]
            if isinstance(s, dict) and s.get("parent") == 0
            and s.get("kind") != "dma_out"
            and is_number(s.get("start_us")) and is_number(s.get("end_us")))
        if sync_sum > (root["end_us"] - root["start_us"]
                       + SPAN_TOLERANCE_US):
            err("%s: synchronous child spans exceed the root span"
                % where)


def check_trace(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    check_build_info("build_info", doc.get("build_info"), errors)
    if not is_count(doc.get("seed")):
        err("seed: expected a non-negative integer")
    if not is_number(doc.get("horizon_ms")) or doc.get("horizon_ms") <= 0:
        err("horizon_ms: expected a positive number")
    fraction = doc.get("ok_fraction")
    if not is_number(fraction) or not 0.0 <= fraction <= 1.0:
        err("ok_fraction: expected a number in [0, 1], got %r"
            % (fraction,))

    sampling = doc.get("sampling")
    if not isinstance(sampling, dict):
        err("sampling: expected an object")
        return errors
    for field in SAMPLING_COUNTERS:
        if not is_count(sampling.get(field)):
            err("sampling.%s: expected a non-negative integer, got %r"
                % (field, sampling.get(field)))
    requests = doc.get("requests")
    if not isinstance(requests, list):
        err("requests: expected an array")
        return errors

    if all(is_count(sampling.get(f)) for f in SAMPLING_COUNTERS):
        # Tail-sampling conservation (trace/sampler.hh): every admitted
        # request is kept-ok, kept-anomalous, or dropped; every offered
        # request is admitted or a kept shed/reject.
        if sampling["kept_ok"] + sampling["kept_miss"] \
                + sampling["dropped"] != sampling["admitted"]:
            err("sampling: kept_ok + kept_miss + dropped != admitted")
        if sampling["admitted"] + sampling["kept_shed"] \
                + sampling["kept_rejected"] != sampling["offered"]:
            err("sampling: admitted + kept_shed + kept_rejected "
                "!= offered")
        kept = sampling["kept_ok"] + sampling["kept_miss"] \
            + sampling["kept_shed"] + sampling["kept_rejected"]
        if len(requests) != kept:
            err("requests: %d records but sampling says %d kept"
                % (len(requests), kept))

    for i, req in enumerate(requests):
        check_request_trace("requests[%d]" % i, req, errors)
    return errors


TRAFFIC_TYPES = ("dram_fetch", "writeback", "forward", "spm_spill")

SLOT_COUNTS = ("bytes", "transfers")

SLOT_TIMES = ("service_us", "wait_suffered_us", "wait_caused_us")

# Float slack for microsecond sums rounded independently on export.
PRESSURE_TOLERANCE_US = 0.01


def check_pressure_slot(where, slot, errors):
    """Validate the accounting fields shared by qos rollups and
    contender rows of a relief-pressure-v1 document."""

    def err(msg):
        errors.append(msg)

    for field in SLOT_COUNTS:
        if not is_count(slot.get(field)):
            err("%s.%s: expected a non-negative integer, got %r"
                % (where, field, slot.get(field)))
    for field in SLOT_TIMES:
        value = slot.get(field)
        if not is_number(value) or value < 0:
            err("%s.%s: expected a non-negative number, got %r"
                % (where, field, value))


def check_pressure(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    check_build_info("build_info", doc.get("build_info"), errors)
    end_us = doc.get("end_us")
    if not is_number(end_us) or end_us < 0:
        err("end_us: expected a non-negative number")

    classes = doc.get("qos_classes")
    if not isinstance(classes, list) or not classes \
            or not all(isinstance(c, str) and c for c in classes):
        err("qos_classes: expected a non-empty array of names")
        classes = []
    elif classes[0] != "default":
        err("qos_classes[0]: expected the implicit 'default' class")

    if tuple(doc.get("traffic", ())) != TRAFFIC_TYPES:
        err("traffic: expected %s" % (list(TRAFFIC_TYPES),))

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        err("totals: expected an object")
        totals = {}
    for field in ("bytes", "transfers", "dram_bytes", "fabric_bytes",
                  "bytes_spared_colocation", "bytes_spared_forwarding"):
        if not is_count(totals.get(field)):
            err("totals.%s: expected a non-negative integer, got %r"
                % (field, totals.get(field)))
    for field in ("service_us", "wait_us"):
        value = totals.get(field)
        if not is_number(value) or value < 0:
            err("totals.%s: expected a non-negative number, got %r"
                % (field, value))

    qos = doc.get("qos")
    if not isinstance(qos, list) or len(qos) != len(classes):
        err("qos: expected one rollup per qos class")
        qos = []
    suffered = 0.0
    caused = 0.0
    for i, entry in enumerate(qos):
        where = "qos[%d]" % i
        if not isinstance(entry, dict):
            err("%s: expected an object" % where)
            continue
        if entry.get("name") != classes[i]:
            err("%s.name: %r does not match qos_classes[%d]"
                % (where, entry.get("name"), i))
        check_pressure_slot(where, entry, errors)
        if is_number(entry.get("wait_suffered_us")):
            suffered += entry["wait_suffered_us"]
        if is_number(entry.get("wait_caused_us")):
            caused += entry["wait_caused_us"]
    # The attribution invariant: every microsecond of queueing delay
    # suffered is charged to some contender, so the rollups balance.
    if qos and abs(suffered - caused) > PRESSURE_TOLERANCE_US:
        err("qos: wait_suffered_us and wait_caused_us do not balance "
            "(%.3f vs %.3f)" % (suffered, caused))
    if qos and is_number(totals.get("wait_us")) \
            and abs(suffered - totals["wait_us"]) > PRESSURE_TOLERANCE_US:
        err("qos: per-class wait does not sum to totals.wait_us")

    resources = doc.get("resources")
    if not isinstance(resources, list) or not resources:
        err("resources: expected a non-empty array")
        return errors
    total_bytes = 0
    for i, res in enumerate(resources):
        where = "resources[%d]" % i
        if not isinstance(res, dict):
            err("%s: expected an object" % where)
            continue
        if not isinstance(res.get("name"), str) or not res.get("name"):
            err("%s.name: expected a non-empty string" % where)
        if not is_number(res.get("peak_gbs")) or res["peak_gbs"] <= 0:
            err("%s.peak_gbs: expected a positive number" % where)
        for field in ("bytes", "transfers"):
            if not is_count(res.get(field)):
                err("%s.%s: expected a non-negative integer, got %r"
                    % (where, field, res.get(field)))
        for field in ("service_us", "wait_us", "busy_us"):
            value = res.get(field)
            if not is_number(value) or value < 0:
                err("%s.%s: expected a non-negative number, got %r"
                    % (where, field, value))
        occupancy = res.get("occupancy")
        if not is_number(occupancy) or not 0.0 <= occupancy <= 1.0:
            err("%s.occupancy: expected a number in [0, 1], got %r"
                % (where, occupancy))
        if is_count(res.get("bytes")):
            total_bytes += res["bytes"]

        contenders = res.get("contenders")
        if not isinstance(contenders, list):
            err("%s.contenders: expected an array" % where)
            continue
        contender_bytes = 0
        for j, row in enumerate(contenders):
            rwhere = "%s.contenders[%d]" % (where, j)
            if not isinstance(row, dict):
                err("%s: expected an object" % rwhere)
                continue
            if not isinstance(row.get("source"), str) \
                    or not row.get("source"):
                err("%s.source: expected a non-empty string" % rwhere)
            if classes and row.get("qos") not in classes:
                err("%s.qos: %r not in qos_classes"
                    % (rwhere, row.get("qos")))
            if row.get("traffic") not in TRAFFIC_TYPES + ("untagged",):
                err("%s.traffic: %r not a traffic type"
                    % (rwhere, row.get("traffic")))
            check_pressure_slot(rwhere, row, errors)
            if is_count(row.get("bytes")):
                contender_bytes += row["bytes"]
        # Contender tables are top-K truncated, so they bound the
        # resource's counters from below but never exceed them.
        if is_count(res.get("bytes")) and contender_bytes > res["bytes"]:
            err("%s: contender bytes exceed the resource total" % where)
    if is_count(totals.get("bytes")) and total_bytes != totals["bytes"]:
        err("totals.bytes: %d does not equal the per-resource sum %d"
            % (totals["bytes"], total_bytes))
    return errors


KERNEL_ISAS = ("scalar", "sse4.2", "avx2", "neon")

KERNEL_UNITS = ("MPix/s", "Melem/s")

# Throughput ratios are emitted with ~6 significant digits; allow
# rounding slack when cross-checking speedup against scalar/simd.
SPEEDUP_TOLERANCE = 1e-3


def check_kernels(doc):
    """Validate a relief-kernels-v1 kernel microbenchmark document."""
    errors = []

    def err(msg):
        errors.append(msg)

    check_build_info("build_info", doc.get("build_info"), errors)
    if doc.get("isa") not in KERNEL_ISAS:
        err("isa: expected one of %s, got %r"
            % (list(KERNEL_ISAS), doc.get("isa")))
    lane_width = doc.get("lane_width")
    if not is_count(lane_width) or lane_width < 1:
        err("lane_width: expected a positive integer, got %r"
            % (lane_width,))
    if not isinstance(doc.get("smoke"), bool):
        err("smoke: expected a boolean")
    for field in ("width", "height"):
        value = doc.get(field)
        if not is_count(value) or value < 1:
            err("%s: expected a positive integer, got %r"
                % (field, value))

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs: expected a non-empty array")
        return errors

    speedups = []
    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not isinstance(run, dict):
            err("%s: expected an object" % where)
            continue
        if not isinstance(run.get("kernel"), str) or not run.get("kernel"):
            err("%s.kernel: expected a non-empty string" % where)
        if run.get("unit") not in KERNEL_UNITS:
            err("%s.unit: expected one of %s, got %r"
                % (where, list(KERNEL_UNITS), run.get("unit")))
        if not is_count(run.get("reps")) or run.get("reps") < 1:
            err("%s.reps: expected a positive integer, got %r"
                % (where, run.get("reps")))
        for field in ("scalar", "simd", "speedup"):
            value = run.get(field)
            if not is_number(value) or value < 0:
                err("%s.%s: expected a non-negative number, got %r"
                    % (where, field, value))
        if not isinstance(run.get("identical"), bool):
            err("%s.identical: expected a boolean" % where)
        # Speedup consistency: speedup is simd/scalar of this run.
        if all(is_number(run.get(f)) for f in ("scalar", "simd",
                                               "speedup")) \
                and run["scalar"] > 0:
            expected = run["simd"] / run["scalar"]
            if abs(run["speedup"] - expected) \
                    > SPEEDUP_TOLERANCE * max(expected, 1.0):
                err("%s.speedup: %r inconsistent with simd/scalar (%r)"
                    % (where, run["speedup"], expected))
            speedups.append(run["speedup"])

    geomean = doc.get("geomean_speedup")
    if not is_number(geomean) or geomean < 0:
        err("geomean_speedup: expected a non-negative number, got %r"
            % (geomean,))
    elif speedups and len(speedups) == len(runs):
        product = 1.0
        for s in speedups:
            product *= max(s, 1e-12)
        expected = product ** (1.0 / len(speedups))
        if abs(geomean - expected) > SPEEDUP_TOLERANCE * max(expected,
                                                            1.0):
            err("geomean_speedup: %r inconsistent with per-run "
                "speedups (%r)" % (geomean, expected))
    return errors


CHECKERS = {
    "relief-bench-v1": check_bench,
    "relief-serve-v1": check_serve,
    "relief-trace-v1": check_trace,
    "relief-pressure-v1": check_pressure,
    "relief-hostprof-v1": check_hostprof,
    "relief-kernels-v1": check_kernels,
}


def check(doc):
    if not isinstance(doc, dict):
        return ["top level: expected an object"]
    schema = doc.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        return ["schema: expected one of %s, got %r"
                % (sorted(CHECKERS), schema)]
    return checker(doc)


# --- self test -----------------------------------------------------------

GOOD_BUILD_INFO = {
    "git_sha": "0123456789ab",
    "compiler_id": "GNU",
    "compiler_version": "12.2.0",
    "build_type": "Release",
    "cxx_flags": "-O3 -DNDEBUG",
}


def good_hostprof_category(wall_ns=0, events=0, heap_allocs=0):
    hist = [0] * HOSTPROF_NS_BUCKETS
    if events:
        hist[5] = events
    return {"wall_ns": wall_ns, "events": events,
            "heap_allocs": heap_allocs, "ns_hist": hist}


GOOD_HOSTPROF_BODY = {
    "total_wall_ns": 1000000,
    "attributed_wall_ns": 950000,
    "coverage": 0.95,
    "categories": {
        "other": good_hostprof_category(wall_ns=150000),
        "sched": good_hostprof_category(wall_ns=300000, events=40,
                                        heap_allocs=2),
        "dma": good_hostprof_category(wall_ns=250000, events=80),
        "mem": good_hostprof_category(wall_ns=100000),
        "interconnect": good_hostprof_category(wall_ns=50000),
        "kernels": good_hostprof_category(wall_ns=60000, events=30),
        "stats": good_hostprof_category(wall_ns=40000, events=5),
        "serve": good_hostprof_category(),
    },
}

GOOD_HOSTPROF = dict(GOOD_HOSTPROF_BODY, schema="relief-hostprof-v1",
                     build_info=GOOD_BUILD_INFO)

GOOD_BENCH = {
    "schema": "relief-bench-v1",
    "build_info": GOOD_BUILD_INFO,
    "limit_ms": 50.0,
    "smoke": True,
    "jobs": 2,
    "inject_spin_ns": 0,
    "runs": [{
        "mix": "CDL",
        "policy": "RELIEF",
        "host_wall_s": 0.5,
        "sim_ticks": 1000,
        "sim_events": 200,
        "events_per_sec": 400.0,
        "dags_finished": 3,
        "node_deadline_fraction": 0.9,
        "dag_deadline_fraction": 1.0,
        "critical_path_us": {bucket: 1.0 for bucket in BUCKETS},
        "hostprof": GOOD_HOSTPROF_BODY,
    }],
}

GOOD_SLO = {
    "name": "realtime",
    "offered": 10,
    "admitted": 8,
    "shed": 1,
    "rejected": 1,
    "completed": 6,
    "missed": 1,
    "in_flight": 2,
    "goodput_rps": 100.0,
    "miss_rate": 0.1667,
    "shed_rate": 0.2,
    "latency_ms": {"mean": 2.0, "p50": 1.5, "p95": 4.0, "p99": 5.0,
                   "max": 6.0},
    "time_in_system_ms": {"mean": 2.5, "p50": 2.0, "p95": 5.0,
                          "p99": 6.0, "max": 7.0},
}

GOOD_ALERTS = [{
    "class": "realtime",
    "opens": 2,
    "closes": 1,
    "active": True,
    "active_ms": 8.5,
    "final_fast_burn": 10.0,
    "final_slow_burn": 6.7,
    "events": [
        {"t_ms": 4.0, "open": True, "fast_burn": 3.0, "slow_burn": 2.1},
        {"t_ms": 9.0, "open": False, "fast_burn": 0.5, "slow_burn": 0.9},
        {"t_ms": 12.0, "open": True, "fast_burn": 10.0,
         "slow_burn": 6.7},
    ],
}]

GOOD_SERVE_PRESSURE = [
    {"class": "default", "bytes": 4096, "transfers": 2,
     "service_us": 1.0, "wait_suffered_us": 0.5,
     "wait_caused_us": 0.7},
    {"class": "realtime", "bytes": 65536, "transfers": 10,
     "service_us": 9.0, "wait_suffered_us": 2.5,
     "wait_caused_us": 2.3},
]

GOOD_SERVE = {
    "schema": "relief-serve-v1",
    "build_info": GOOD_BUILD_INFO,
    "seed": 1,
    "horizon_ms": 50.0,
    "smoke": False,
    "capacity_rps": 340.0,
    "runs": [{
        "policy": "RELIEF",
        "admission": "laxity",
        "arrival": "poisson",
        "offered_load": 1.0,
        "rate_rps": 340.0,
        "total": GOOD_SLO,
        "classes": [GOOD_SLO],
        "alerts": GOOD_ALERTS,
        "pressure": GOOD_SERVE_PRESSURE,
    }],
    "saturation": [{"policy": "RELIEF", "knee_load": 1.2},
                   {"policy": "FCFS", "knee_load": None}],
}

GOOD_PRESSURE_SLOT = {
    "bytes": 1024,
    "transfers": 2,
    "service_us": 1.5,
    "wait_suffered_us": 2.0,
    "wait_caused_us": 2.0,
}

GOOD_PRESSURE = {
    "schema": "relief-pressure-v1",
    "build_info": GOOD_BUILD_INFO,
    "end_us": 1000.0,
    "qos_classes": ["default", "realtime"],
    "traffic": list(TRAFFIC_TYPES),
    "totals": {
        "bytes": 3072,
        "transfers": 4,
        "service_us": 3.0,
        "wait_us": 2.0,
        "dram_bytes": 2048,
        "fabric_bytes": 1024,
        "bytes_spared_colocation": 512,
        "bytes_spared_forwarding": 256,
    },
    "qos": [
        dict(GOOD_PRESSURE_SLOT, name="default"),
        {"name": "realtime", "bytes": 2048, "transfers": 2,
         "service_us": 1.5, "wait_suffered_us": 0.0,
         "wait_caused_us": 0.0},
    ],
    "resources": [
        {
            "name": "soc.dram.channel",
            "peak_gbs": 12.8,
            "bytes": 2048,
            "transfers": 3,
            "service_us": 2.0,
            "wait_us": 2.0,
            "busy_us": 2.0,
            "occupancy": 0.002,
            "contenders": [
                dict(GOOD_PRESSURE_SLOT, source="soc.elem-matrix0",
                     qos="default", traffic="dram_fetch"),
                {"source": "soc.conv0", "qos": "realtime",
                 "traffic": "writeback", "bytes": 1024,
                 "transfers": 1, "service_us": 0.5,
                 "wait_suffered_us": 0.0, "wait_caused_us": 0.0},
            ],
        },
        {
            "name": "soc.bus.channel",
            "peak_gbs": 32.0,
            "bytes": 1024,
            "transfers": 1,
            "service_us": 1.0,
            "wait_us": 0.0,
            "busy_us": 1.0,
            "occupancy": 0.001,
            "contenders": [],
        },
    ],
}

GOOD_KERNELS = {
    "schema": "relief-kernels-v1",
    "build_info": GOOD_BUILD_INFO,
    "isa": "avx2",
    "lane_width": 8,
    "smoke": True,
    "width": 96,
    "height": 64,
    "runs": [
        {"kernel": "conv5x5", "unit": "MPix/s", "reps": 16,
         "scalar": 100.0, "simd": 500.0, "speedup": 5.0,
         "identical": True},
        {"kernel": "elem_add", "unit": "Melem/s", "reps": 32,
         "scalar": 1000.0, "simd": 4000.0, "speedup": 4.0,
         "identical": True},
    ],
    # geomean of 5.0 and 4.0
    "geomean_speedup": 4.47213595499958,
}

GOOD_TRACE = {
    "schema": "relief-trace-v1",
    "build_info": GOOD_BUILD_INFO,
    "seed": 1,
    "horizon_ms": 20.0,
    "ok_fraction": 0.25,
    "sampling": {
        "offered": 5,
        "admitted": 3,
        "kept_ok": 1,
        "kept_miss": 1,
        "kept_shed": 1,
        "kept_rejected": 1,
        "dropped": 1,
    },
    "requests": [
        {
            # A completed miss with a full span tree: root, admission,
            # one node with its four phases, one async write-back.
            "id": 0,
            "class": "realtime",
            "app": "canny",
            "outcome": "miss",
            "arrival_us": 100.0,
            "finish_us": 300.0,
            "deadline_us": 250.0,
            "latency_us": 200.0,
            "buckets_us": {"queue_wait": 80.0, "manager": 10.0,
                           "dma_in": 40.0, "compute": 60.0,
                           "dma_out": 0.0, "dep_stall": 10.0,
                           "total": 200.0},
            "spans": [
                {"kind": "request", "parent": -1, "label": "",
                 "start_us": 100.0, "end_us": 300.0},
                {"kind": "admission", "parent": 0, "label": "",
                 "start_us": 100.0, "end_us": 110.0},
                {"kind": "node", "parent": 0, "label": "canny.gauss",
                 "start_us": 110.0, "end_us": 300.0},
                {"kind": "queue_wait", "parent": 2, "label": "",
                 "start_us": 110.0, "end_us": 190.0},
                {"kind": "dispatch", "parent": 2, "label": "",
                 "start_us": 190.0, "end_us": 200.0},
                {"kind": "dma_in", "parent": 2, "label": "",
                 "start_us": 200.0, "end_us": 240.0},
                {"kind": "compute", "parent": 2, "label": "",
                 "start_us": 240.0, "end_us": 300.0},
                {"kind": "dma_out", "parent": 0,
                 "label": "canny.gauss", "start_us": 250.0,
                 "end_us": 300.0},
            ],
        },
        {
            # A sampled-in OK request, root-only for brevity.
            "id": 1,
            "class": "batch",
            "app": "lstm",
            "outcome": "ok",
            "arrival_us": 120.0,
            "finish_us": 180.0,
            "deadline_us": 500.0,
            "latency_us": 60.0,
            "buckets_us": {"queue_wait": 10.0, "manager": 5.0,
                           "dma_in": 15.0, "compute": 25.0,
                           "dma_out": 0.0, "dep_stall": 5.0,
                           "total": 60.0},
            "spans": [{"kind": "request", "parent": -1, "label": "",
                       "start_us": 120.0, "end_us": 180.0}],
        },
        {
            # A shed request: root-only, finish == arrival.
            "id": 2,
            "class": "interactive",
            "app": "gru",
            "outcome": "shed",
            "arrival_us": 130.0,
            "finish_us": 130.0,
            "deadline_us": 400.0,
            "latency_us": 0.0,
            "buckets_us": {bucket: 0.0 for bucket in BUCKETS},
            "spans": [{"kind": "request", "parent": -1, "label": "",
                       "start_us": 130.0, "end_us": 130.0}],
        },
        {
            # A rejected request: root-only, finish == arrival.
            "id": 3,
            "class": "realtime",
            "app": "deblur",
            "outcome": "rejected",
            "arrival_us": 140.0,
            "finish_us": 140.0,
            "deadline_us": 300.0,
            "latency_us": 0.0,
            "buckets_us": {bucket: 0.0 for bucket in BUCKETS},
            "spans": [{"kind": "request", "parent": -1, "label": "",
                       "start_us": 140.0, "end_us": 140.0}],
        },
    ],
}


def mutate(doc, path, value):
    """Deep-copy @p doc and set the field at @p path to @p value."""
    copy = json.loads(json.dumps(doc))
    node = copy
    for key in path[:-1]:
        node = node[key]
    if value is Ellipsis:
        del node[path[-1]]
    else:
        node[path[-1]] = value
    return copy


def self_test():
    failures = []

    def expect(doc, valid, label):
        errors = check(doc)
        if valid and errors:
            failures.append("%s: expected valid, got %s" % (label, errors))
        if not valid and not errors:
            failures.append("%s: expected a violation, got none" % label)

    expect(GOOD_BENCH, True, "good bench doc")
    expect(GOOD_SERVE, True, "good serve doc")
    expect([], False, "non-object top level")
    expect({"schema": "relief-nope-v9", "runs": []}, False,
           "unknown schema")

    expect(mutate(GOOD_BENCH, ["limit_ms"], -1), False,
           "bench negative limit_ms")
    expect(mutate(GOOD_BENCH, ["runs"], []), False, "bench empty runs")
    expect(mutate(GOOD_BENCH, ["runs", 0, "dags_finished"], "three"),
           False, "bench non-integer dags_finished")
    expect(mutate(GOOD_BENCH, ["runs", 0, "node_deadline_fraction"], 1.5),
           False, "bench fraction outside [0, 1]")
    expect(mutate(GOOD_BENCH, ["runs", 0, "critical_path_us", "compute"],
                  Ellipsis), False, "bench missing breakdown bucket")
    expect(mutate(GOOD_BENCH, ["build_info"], Ellipsis), False,
           "bench missing build_info")
    expect(mutate(GOOD_BENCH, ["build_info", "git_sha"], ""), False,
           "bench empty git sha")
    expect(mutate(GOOD_BENCH, ["inject_spin_ns"], -5), False,
           "bench negative inject_spin_ns")
    expect(mutate(GOOD_BENCH, ["runs", 0, "hostprof"], Ellipsis), True,
           "bench run without hostprof (not --host-profile)")
    expect(mutate(GOOD_BENCH,
                  ["runs", 0, "hostprof", "coverage"], 1.2),
           False, "bench embedded hostprof coverage outside [0, 1]")

    expect(GOOD_HOSTPROF, True, "good hostprof doc")
    expect(mutate(GOOD_HOSTPROF, ["build_info"], Ellipsis), False,
           "hostprof missing build_info")
    expect(mutate(GOOD_HOSTPROF, ["coverage"], -0.1), False,
           "hostprof coverage below zero")
    expect(mutate(GOOD_HOSTPROF, ["attributed_wall_ns"], 900000),
           False, "hostprof attributed != per-category sum")
    expect(mutate(GOOD_HOSTPROF, ["coverage"], 0.5), False,
           "hostprof coverage inconsistent with counters")
    expect(mutate(GOOD_HOSTPROF, ["categories", "dma"], Ellipsis),
           False, "hostprof missing category")
    expect(mutate(GOOD_HOSTPROF, ["categories", "serve", "wall_ns"],
                  -1), False, "hostprof negative category wall")
    expect(mutate(GOOD_HOSTPROF,
                  ["categories", "sched", "ns_hist"], [0] * 10),
           False, "hostprof wrong histogram length")
    expect(mutate(GOOD_HOSTPROF,
                  ["categories", "sched", "events"], 99),
           False, "hostprof events != histogram sum")

    expect(mutate(GOOD_SERVE, ["seed"], -1), False, "serve negative seed")
    expect(mutate(GOOD_SERVE, ["build_info"], Ellipsis), False,
           "serve missing build_info")
    expect(mutate(GOOD_SERVE, ["horizon_ms"], 0), False,
           "serve zero horizon")
    expect(mutate(GOOD_SERVE, ["capacity_rps"], None), True,
           "serve null capacity (absolute-rate doc)")
    expect(mutate(GOOD_SERVE, ["runs"], []), False, "serve empty runs")
    expect(mutate(GOOD_SERVE, ["runs", 0, "rate_rps"], 0), False,
           "serve zero rate")
    expect(mutate(GOOD_SERVE, ["runs", 0, "total", "offered"], 99), False,
           "serve counter conservation violated")
    expect(mutate(GOOD_SERVE, ["runs", 0, "total", "miss_rate"], 1.5),
           False, "serve rate outside [0, 1]")
    expect(mutate(GOOD_SERVE,
                  ["runs", 0, "total", "latency_ms", "p95"], 9.0),
           False, "serve non-monotonic quantiles")
    expect(mutate(GOOD_SERVE, ["runs", 0, "classes"], []), False,
           "serve empty classes")
    expect(mutate(GOOD_SERVE, ["saturation", 0, "knee_load"], -2), False,
           "serve negative knee")
    expect(mutate(GOOD_SERVE, ["saturation"], Ellipsis), False,
           "serve missing saturation")
    expect(mutate(GOOD_SERVE, ["runs", 0, "alerts"], Ellipsis), True,
           "serve doc without alerts (pre-telemetry)")
    expect(mutate(GOOD_SERVE, ["runs", 0, "alerts", 0, "active"], False),
           False, "serve alert active inconsistent with opens/closes")
    expect(mutate(GOOD_SERVE,
                  ["runs", 0, "alerts", 0, "events", 0, "fast_burn"],
                  -1.0),
           False, "serve alert negative burn")

    expect(mutate(GOOD_SERVE, ["runs", 0, "pressure"], Ellipsis), True,
           "serve doc without pressure (pre-ledger)")
    expect(mutate(GOOD_SERVE, ["runs", 0, "pressure"], []), False,
           "serve empty pressure array")
    expect(mutate(GOOD_SERVE, ["runs", 0, "pressure", 0, "class"],
                  "realtime"),
           False, "serve pressure without the default class first")
    expect(mutate(GOOD_SERVE,
                  ["runs", 0, "pressure", 1, "wait_caused_us"], -1.0),
           False, "serve pressure negative wait")

    expect(GOOD_PRESSURE, True, "good pressure doc")
    expect(mutate(GOOD_PRESSURE, ["build_info", "compiler_id"], ""),
           False, "pressure empty compiler id")
    expect(mutate(GOOD_PRESSURE, ["end_us"], -1), False,
           "pressure negative end_us")
    expect(mutate(GOOD_PRESSURE, ["qos_classes"], ["realtime"]), False,
           "pressure missing default class")
    expect(mutate(GOOD_PRESSURE, ["traffic"], ["dram_fetch"]), False,
           "pressure wrong traffic list")
    expect(mutate(GOOD_PRESSURE, ["totals", "bytes"], 999), False,
           "pressure totals do not match per-resource sum")
    expect(mutate(GOOD_PRESSURE, ["qos", 1, "wait_caused_us"], 9.0),
           False, "pressure suffered/caused books unbalanced")
    expect(mutate(GOOD_PRESSURE, ["qos", 1, "name"], "batch"), False,
           "pressure qos rollup name mismatch")
    expect(mutate(GOOD_PRESSURE, ["resources"], []), False,
           "pressure empty resources")
    expect(mutate(GOOD_PRESSURE, ["resources", 0, "occupancy"], 1.5),
           False, "pressure occupancy outside [0, 1]")
    expect(mutate(GOOD_PRESSURE, ["resources", 0, "peak_gbs"], 0),
           False, "pressure non-positive peak bandwidth")
    expect(mutate(GOOD_PRESSURE,
                  ["resources", 0, "contenders", 0, "qos"], "batch"),
           False, "pressure contender with unknown qos class")
    expect(mutate(GOOD_PRESSURE,
                  ["resources", 0, "contenders", 0, "traffic"], "dma"),
           False, "pressure contender with unknown traffic type")
    expect(mutate(GOOD_PRESSURE,
                  ["resources", 0, "contenders", 0, "bytes"], 999999),
           False, "pressure contender bytes exceed the resource")
    expect(mutate(GOOD_PRESSURE,
                  ["resources", 0, "contenders", 1, "transfers"], -1),
           False, "pressure negative transfer count")

    expect(GOOD_KERNELS, True, "good kernels doc")
    expect(mutate(GOOD_KERNELS, ["build_info"], Ellipsis), False,
           "kernels missing build_info")
    expect(mutate(GOOD_KERNELS, ["isa"], "avx512"), False,
           "kernels unknown isa")
    expect(mutate(GOOD_KERNELS, ["lane_width"], 0), False,
           "kernels zero lane width")
    expect(mutate(GOOD_KERNELS, ["width"], -1), False,
           "kernels negative image width")
    expect(mutate(GOOD_KERNELS, ["runs"], []), False,
           "kernels empty runs")
    expect(mutate(GOOD_KERNELS, ["runs", 0, "kernel"], ""), False,
           "kernels empty kernel name")
    expect(mutate(GOOD_KERNELS, ["runs", 0, "unit"], "GB/s"), False,
           "kernels unknown unit")
    expect(mutate(GOOD_KERNELS, ["runs", 0, "scalar"], -1.0), False,
           "kernels negative throughput")
    expect(mutate(GOOD_KERNELS, ["runs", 0, "speedup"], 9.0), False,
           "kernels speedup inconsistent with simd/scalar")
    expect(mutate(GOOD_KERNELS, ["runs", 1, "identical"], "yes"),
           False, "kernels non-boolean identical")
    expect(mutate(GOOD_KERNELS, ["geomean_speedup"], 2.0), False,
           "kernels geomean inconsistent with per-run speedups")

    expect(GOOD_TRACE, True, "good trace doc")
    expect(mutate(GOOD_TRACE, ["build_info"], None), False,
           "trace null build_info")
    expect(mutate(GOOD_TRACE, ["ok_fraction"], 1.5), False,
           "trace ok_fraction outside [0, 1]")
    expect(mutate(GOOD_TRACE, ["sampling", "dropped"], 7), False,
           "trace sampling conservation violated")
    expect(mutate(GOOD_TRACE, ["sampling", "kept_shed"], 2), False,
           "trace offered conservation violated")
    expect(mutate(GOOD_TRACE, ["requests", 1], Ellipsis), False,
           "trace kept count mismatch")
    expect(mutate(GOOD_TRACE, ["requests", 0, "outcome"], "late"),
           False, "trace unknown outcome")
    expect(mutate(GOOD_TRACE, ["requests", 0, "finish_us"], 50.0),
           False, "trace finish before arrival")
    expect(mutate(GOOD_TRACE, ["requests", 0, "spans", 0, "kind"],
                  "node"),
           False, "trace non-request root span")
    expect(mutate(GOOD_TRACE, ["requests", 0, "spans", 3, "parent"], 5),
           False, "trace forward parent reference")
    expect(mutate(GOOD_TRACE,
                  ["requests", 0, "spans", 3, "end_us"], 400.0),
           False, "trace child escapes its parent window")
    expect(mutate(GOOD_TRACE,
                  ["requests", 0, "spans", 1, "end_us"], 290.0),
           False, "trace synchronous children exceed root")
    expect(mutate(GOOD_TRACE,
                  ["requests", 0, "buckets_us", "compute"], Ellipsis),
           False, "trace missing bucket")

    for failure in failures:
        print("self-test failure: %s" % failure, file=sys.stderr)
    if not failures:
        print("self-test passed")
    return 1 if failures else 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print("usage: check_bench_schema.py (BENCH_FILE | --self-test)",
              file=sys.stderr)
        return 1
    try:
        with open(argv[1]) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print("error: cannot parse %s: %s" % (argv[1], exc),
              file=sys.stderr)
        return 1
    errors = check(doc)
    for error in errors:
        print("schema violation: %s" % error, file=sys.stderr)
    if errors:
        return 1
    for unit in ("runs", "requests", "resources", "categories"):
        if unit in doc:
            break
    print("%s: schema-valid %s (%d %s)"
          % (argv[1], doc["schema"], len(doc.get(unit, [])), unit))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
