#!/usr/bin/env python3
"""Validate a relief-bench-v1 BENCH JSON document.

Dependency-free (Python standard library only) so CI and developers can
run it anywhere:

    scripts/check_bench_schema.py BENCH_relief.json

Exits 0 when the document is schema-valid, 1 with a diagnostic per
violation otherwise. The schema is documented in docs/observability.md.
"""

import json
import sys

BUCKETS = ("queue_wait", "manager", "dma_in", "compute", "dma_out",
           "dep_stall", "total")

RUN_FIELDS = {
    "mix": str,
    "policy": str,
    "host_wall_s": (int, float),
    "sim_ticks": int,
    "sim_events": int,
    "events_per_sec": (int, float),
    "dags_finished": int,
    "node_deadline_fraction": (int, float),
    "dag_deadline_fraction": (int, float),
    "critical_path_us": dict,
}

FRACTION_FIELDS = ("node_deadline_fraction", "dag_deadline_fraction")


def check(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    if not isinstance(doc, dict):
        return ["top level: expected an object"]
    if doc.get("schema") != "relief-bench-v1":
        err("schema: expected 'relief-bench-v1', got %r"
            % doc.get("schema"))
    if not isinstance(doc.get("limit_ms"), (int, float)) \
            or doc.get("limit_ms") <= 0:
        err("limit_ms: expected a positive number")
    if not isinstance(doc.get("smoke"), bool):
        err("smoke: expected a boolean")
    # "jobs" (worker threads used) arrived with the parallel runner;
    # tolerate its absence so older documents stay valid.
    if "jobs" in doc:
        jobs = doc["jobs"]
        if isinstance(jobs, bool) or not isinstance(jobs, int) \
                or jobs < 1:
            err("jobs: expected a positive integer, got %r" % (jobs,))

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs: expected a non-empty array")
        return errors

    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not isinstance(run, dict):
            err("%s: expected an object" % where)
            continue
        for field, kind in RUN_FIELDS.items():
            value = run.get(field)
            # bool is an int subclass; reject it for numeric fields.
            if value is None or isinstance(value, bool) \
                    or not isinstance(value, kind):
                err("%s.%s: expected %s, got %r"
                    % (where, field, kind, value))
        for field in FRACTION_FIELDS:
            value = run.get(field)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool) \
                    and not 0.0 <= value <= 1.0:
                err("%s.%s: %r outside [0, 1]" % (where, field, value))
        for field in ("host_wall_s", "events_per_sec"):
            value = run.get(field)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool) and value < 0:
                err("%s.%s: %r is negative" % (where, field, value))

        cp = run.get("critical_path_us")
        if isinstance(cp, dict):
            for bucket in BUCKETS:
                value = cp.get(bucket)
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    err("%s.critical_path_us.%s: expected a number, "
                        "got %r" % (where, bucket, value))
                elif value < 0:
                    err("%s.critical_path_us.%s: %r is negative"
                        % (where, bucket, value))
            extra = set(cp) - set(BUCKETS)
            if extra:
                err("%s.critical_path_us: unknown keys %s"
                    % (where, sorted(extra)))
    return errors


def main(argv):
    if len(argv) != 2:
        print("usage: check_bench_schema.py BENCH_FILE", file=sys.stderr)
        return 1
    try:
        with open(argv[1]) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print("error: cannot parse %s: %s" % (argv[1], exc),
              file=sys.stderr)
        return 1
    errors = check(doc)
    for error in errors:
        print("schema violation: %s" % error, file=sys.stderr)
    if errors:
        return 1
    print("%s: schema-valid relief-bench-v1 (%d runs)"
          % (argv[1], len(doc["runs"])))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
