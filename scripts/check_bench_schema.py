#!/usr/bin/env python3
"""Validate a relief benchmark JSON document.

Dispatches on the document's "schema" field and validates both formats
the benches emit:

  - relief-bench-v1  (tools/relief_bench, bench smoke)  — documented in
    docs/observability.md
  - relief-serve-v1  (bench/serve_load_sweep, tools/relief_serve) —
    documented in docs/serving.md

Dependency-free (Python standard library only) so CI and developers can
run it anywhere:

    scripts/check_bench_schema.py BENCH_relief.json
    scripts/check_bench_schema.py BENCH_serve.json
    scripts/check_bench_schema.py --self-test

Exits 0 when the document is schema-valid, 1 with a diagnostic per
violation otherwise. --self-test validates the checker itself against
embedded good and broken documents (run from ctest as
schema_checker_self_test).
"""

import json
import sys

BUCKETS = ("queue_wait", "manager", "dma_in", "compute", "dma_out",
           "dep_stall", "total")

RUN_FIELDS = {
    "mix": str,
    "policy": str,
    "host_wall_s": (int, float),
    "sim_ticks": int,
    "sim_events": int,
    "events_per_sec": (int, float),
    "dags_finished": int,
    "node_deadline_fraction": (int, float),
    "dag_deadline_fraction": (int, float),
    "critical_path_us": dict,
}

FRACTION_FIELDS = ("node_deadline_fraction", "dag_deadline_fraction")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def is_count(value):
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def check_bench(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    if not isinstance(doc.get("limit_ms"), (int, float)) \
            or doc.get("limit_ms") <= 0:
        err("limit_ms: expected a positive number")
    if not isinstance(doc.get("smoke"), bool):
        err("smoke: expected a boolean")
    # "jobs" (worker threads used) arrived with the parallel runner;
    # tolerate its absence so older documents stay valid.
    if "jobs" in doc:
        jobs = doc["jobs"]
        if not is_count(jobs) or jobs < 1:
            err("jobs: expected a positive integer, got %r" % (jobs,))

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs: expected a non-empty array")
        return errors

    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not isinstance(run, dict):
            err("%s: expected an object" % where)
            continue
        for field, kind in RUN_FIELDS.items():
            value = run.get(field)
            # bool is an int subclass; reject it for numeric fields.
            if value is None or isinstance(value, bool) \
                    or not isinstance(value, kind):
                err("%s.%s: expected %s, got %r"
                    % (where, field, kind, value))
        for field in FRACTION_FIELDS:
            value = run.get(field)
            if is_number(value) and not 0.0 <= value <= 1.0:
                err("%s.%s: %r outside [0, 1]" % (where, field, value))
        for field in ("host_wall_s", "events_per_sec"):
            value = run.get(field)
            if is_number(value) and value < 0:
                err("%s.%s: %r is negative" % (where, field, value))

        cp = run.get("critical_path_us")
        if isinstance(cp, dict):
            for bucket in BUCKETS:
                value = cp.get(bucket)
                if not is_number(value):
                    err("%s.critical_path_us.%s: expected a number, "
                        "got %r" % (where, bucket, value))
                elif value < 0:
                    err("%s.critical_path_us.%s: %r is negative"
                        % (where, bucket, value))
            extra = set(cp) - set(BUCKETS)
            if extra:
                err("%s.critical_path_us: unknown keys %s"
                    % (where, sorted(extra)))
    return errors


SLO_COUNTERS = ("offered", "admitted", "shed", "rejected", "completed",
                "missed", "in_flight")

SLO_RATES = ("miss_rate", "shed_rate")

QUANTILES = ("mean", "p50", "p95", "p99", "max")


def check_slo(where, slo, errors):
    """Validate one per-class SLO object of a relief-serve-v1 run."""

    def err(msg):
        errors.append(msg)

    if not isinstance(slo, dict):
        err("%s: expected an object" % where)
        return
    if not isinstance(slo.get("name"), str) or not slo.get("name"):
        err("%s.name: expected a non-empty string" % where)
    for field in SLO_COUNTERS:
        if not is_count(slo.get(field)):
            err("%s.%s: expected a non-negative integer, got %r"
                % (where, field, slo.get(field)))
    if all(is_count(slo.get(f)) for f in SLO_COUNTERS):
        if slo["offered"] != slo["admitted"] + slo["shed"] \
                + slo["rejected"]:
            err("%s: offered != admitted + shed + rejected" % where)
        if slo["admitted"] != slo["completed"] + slo["in_flight"]:
            err("%s: admitted != completed + in_flight" % where)
        if slo["missed"] > slo["completed"]:
            err("%s: missed > completed" % where)
    if not is_number(slo.get("goodput_rps")) or slo["goodput_rps"] < 0:
        err("%s.goodput_rps: expected a non-negative number" % where)
    for field in SLO_RATES:
        value = slo.get(field)
        if not is_number(value) or not 0.0 <= value <= 1.0:
            err("%s.%s: expected a number in [0, 1], got %r"
                % (where, field, value))
    for field in ("latency_ms", "time_in_system_ms"):
        dist = slo.get(field)
        if not isinstance(dist, dict):
            err("%s.%s: expected an object" % (where, field))
            continue
        for q in QUANTILES:
            value = dist.get(q)
            if not is_number(value) or value < 0:
                err("%s.%s.%s: expected a non-negative number, got %r"
                    % (where, field, q, value))
        if all(is_number(dist.get(q)) for q in QUANTILES) \
                and not (dist["p50"] <= dist["p95"] <= dist["p99"]
                         <= dist["max"]):
            err("%s.%s: quantiles are not monotonic" % (where, field))


def check_serve(doc):
    errors = []

    def err(msg):
        errors.append(msg)

    if not is_count(doc.get("seed")):
        err("seed: expected a non-negative integer")
    if not is_number(doc.get("horizon_ms")) or doc.get("horizon_ms") <= 0:
        err("horizon_ms: expected a positive number")
    if not isinstance(doc.get("smoke"), bool):
        err("smoke: expected a boolean")
    capacity = doc.get("capacity_rps", None)
    if capacity is not None and (not is_number(capacity)
                                 or capacity <= 0):
        err("capacity_rps: expected a positive number or null")

    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        err("runs: expected a non-empty array")
        return errors

    for i, run in enumerate(runs):
        where = "runs[%d]" % i
        if not isinstance(run, dict):
            err("%s: expected an object" % where)
            continue
        for field in ("policy", "admission", "arrival"):
            if not isinstance(run.get(field), str) or not run.get(field):
                err("%s.%s: expected a non-empty string" % (where, field))
        # offered_load 0 marks an absolute-rate run (tools/relief_serve).
        if not is_number(run.get("offered_load")) \
                or run["offered_load"] < 0:
            err("%s.offered_load: expected a non-negative number"
                % where)
        if not is_number(run.get("rate_rps")) or run["rate_rps"] <= 0:
            err("%s.rate_rps: expected a positive number" % where)
        check_slo("%s.total" % where, run.get("total"), errors)
        classes = run.get("classes")
        if not isinstance(classes, list) or not classes:
            err("%s.classes: expected a non-empty array" % where)
            continue
        for j, slo in enumerate(classes):
            check_slo("%s.classes[%d]" % (where, j), slo, errors)

    saturation = doc.get("saturation")
    if not isinstance(saturation, list):
        err("saturation: expected an array")
        return errors
    for i, entry in enumerate(saturation):
        where = "saturation[%d]" % i
        if not isinstance(entry, dict):
            err("%s: expected an object" % where)
            continue
        if not isinstance(entry.get("policy"), str):
            err("%s.policy: expected a string" % where)
        knee = entry.get("knee_load", None)
        if knee is not None and (not is_number(knee) or knee <= 0):
            err("%s.knee_load: expected a positive number or null"
                % where)
    return errors


CHECKERS = {
    "relief-bench-v1": check_bench,
    "relief-serve-v1": check_serve,
}


def check(doc):
    if not isinstance(doc, dict):
        return ["top level: expected an object"]
    schema = doc.get("schema")
    checker = CHECKERS.get(schema)
    if checker is None:
        return ["schema: expected one of %s, got %r"
                % (sorted(CHECKERS), schema)]
    return checker(doc)


# --- self test -----------------------------------------------------------

GOOD_BENCH = {
    "schema": "relief-bench-v1",
    "limit_ms": 50.0,
    "smoke": True,
    "jobs": 2,
    "runs": [{
        "mix": "CDL",
        "policy": "RELIEF",
        "host_wall_s": 0.5,
        "sim_ticks": 1000,
        "sim_events": 200,
        "events_per_sec": 400.0,
        "dags_finished": 3,
        "node_deadline_fraction": 0.9,
        "dag_deadline_fraction": 1.0,
        "critical_path_us": {bucket: 1.0 for bucket in BUCKETS},
    }],
}

GOOD_SLO = {
    "name": "realtime",
    "offered": 10,
    "admitted": 8,
    "shed": 1,
    "rejected": 1,
    "completed": 6,
    "missed": 1,
    "in_flight": 2,
    "goodput_rps": 100.0,
    "miss_rate": 0.1667,
    "shed_rate": 0.2,
    "latency_ms": {"mean": 2.0, "p50": 1.5, "p95": 4.0, "p99": 5.0,
                   "max": 6.0},
    "time_in_system_ms": {"mean": 2.5, "p50": 2.0, "p95": 5.0,
                          "p99": 6.0, "max": 7.0},
}

GOOD_SERVE = {
    "schema": "relief-serve-v1",
    "seed": 1,
    "horizon_ms": 50.0,
    "smoke": False,
    "capacity_rps": 340.0,
    "runs": [{
        "policy": "RELIEF",
        "admission": "laxity",
        "arrival": "poisson",
        "offered_load": 1.0,
        "rate_rps": 340.0,
        "total": GOOD_SLO,
        "classes": [GOOD_SLO],
    }],
    "saturation": [{"policy": "RELIEF", "knee_load": 1.2},
                   {"policy": "FCFS", "knee_load": None}],
}


def mutate(doc, path, value):
    """Deep-copy @p doc and set the field at @p path to @p value."""
    copy = json.loads(json.dumps(doc))
    node = copy
    for key in path[:-1]:
        node = node[key]
    if value is Ellipsis:
        del node[path[-1]]
    else:
        node[path[-1]] = value
    return copy


def self_test():
    failures = []

    def expect(doc, valid, label):
        errors = check(doc)
        if valid and errors:
            failures.append("%s: expected valid, got %s" % (label, errors))
        if not valid and not errors:
            failures.append("%s: expected a violation, got none" % label)

    expect(GOOD_BENCH, True, "good bench doc")
    expect(GOOD_SERVE, True, "good serve doc")
    expect([], False, "non-object top level")
    expect({"schema": "relief-nope-v9", "runs": []}, False,
           "unknown schema")

    expect(mutate(GOOD_BENCH, ["limit_ms"], -1), False,
           "bench negative limit_ms")
    expect(mutate(GOOD_BENCH, ["runs"], []), False, "bench empty runs")
    expect(mutate(GOOD_BENCH, ["runs", 0, "dags_finished"], "three"),
           False, "bench non-integer dags_finished")
    expect(mutate(GOOD_BENCH, ["runs", 0, "node_deadline_fraction"], 1.5),
           False, "bench fraction outside [0, 1]")
    expect(mutate(GOOD_BENCH, ["runs", 0, "critical_path_us", "compute"],
                  Ellipsis), False, "bench missing breakdown bucket")

    expect(mutate(GOOD_SERVE, ["seed"], -1), False, "serve negative seed")
    expect(mutate(GOOD_SERVE, ["horizon_ms"], 0), False,
           "serve zero horizon")
    expect(mutate(GOOD_SERVE, ["capacity_rps"], None), True,
           "serve null capacity (absolute-rate doc)")
    expect(mutate(GOOD_SERVE, ["runs"], []), False, "serve empty runs")
    expect(mutate(GOOD_SERVE, ["runs", 0, "rate_rps"], 0), False,
           "serve zero rate")
    expect(mutate(GOOD_SERVE, ["runs", 0, "total", "offered"], 99), False,
           "serve counter conservation violated")
    expect(mutate(GOOD_SERVE, ["runs", 0, "total", "miss_rate"], 1.5),
           False, "serve rate outside [0, 1]")
    expect(mutate(GOOD_SERVE,
                  ["runs", 0, "total", "latency_ms", "p95"], 9.0),
           False, "serve non-monotonic quantiles")
    expect(mutate(GOOD_SERVE, ["runs", 0, "classes"], []), False,
           "serve empty classes")
    expect(mutate(GOOD_SERVE, ["saturation", 0, "knee_load"], -2), False,
           "serve negative knee")
    expect(mutate(GOOD_SERVE, ["saturation"], Ellipsis), False,
           "serve missing saturation")

    for failure in failures:
        print("self-test failure: %s" % failure, file=sys.stderr)
    if not failures:
        print("self-test passed")
    return 1 if failures else 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 2:
        print("usage: check_bench_schema.py (BENCH_FILE | --self-test)",
              file=sys.stderr)
        return 1
    try:
        with open(argv[1]) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print("error: cannot parse %s: %s" % (argv[1], exc),
              file=sys.stderr)
        return 1
    errors = check(doc)
    for error in errors:
        print("schema violation: %s" % error, file=sys.stderr)
    if errors:
        return 1
    print("%s: schema-valid %s (%d runs)"
          % (argv[1], doc["schema"], len(doc["runs"])))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
