#!/usr/bin/env python3
"""Assert relief_bench's hostprof *structure* is jobs-invariant.

Runs `relief_bench --smoke --host-profile` once with --jobs 1 and once
with --jobs 4 and requires the two relief-bench-v1 documents to agree
on structure: the same (mix, policy) cells in the same order, and for
each cell the same hostprof key set, the same category names in the
same order, and the same histogram shape. Timings differ run to run by
construction, so values are deliberately NOT compared — this gate
catches the worker-parallel path dropping or reordering attribution
state, not noise.

Usage: check_hostprof_invariance.py PATH_TO_RELIEF_BENCH

Exits 0 when the structures match, 1 with a diagnostic otherwise.
Python standard library only.
"""

import json
import os
import subprocess
import sys
import tempfile


def bench_structure(bench_path, jobs, out_dir):
    out = os.path.join(out_dir, "bench_jobs%d.json" % jobs)
    subprocess.run(
        [bench_path, "--smoke", "--host-profile", "--jobs", str(jobs),
         "--out", out],
        check=True, stdout=subprocess.DEVNULL)
    with open(out, encoding="utf-8") as handle:
        doc = json.load(handle)

    structure = {
        "schema": doc.get("schema"),
        "doc_keys": sorted(doc),
        "build_info_keys": sorted(doc.get("build_info", {})),
        "runs": [],
    }
    for run in doc.get("runs", []):
        hostprof = run.get("hostprof", {})
        categories = hostprof.get("categories", {})
        structure["runs"].append({
            "mix": run.get("mix"),
            "policy": run.get("policy"),
            "run_keys": sorted(run),
            "hostprof_keys": sorted(hostprof),
            # Category order is part of the schema contract.
            "categories": list(categories),
            "category_keys": [sorted(cat)
                              for cat in categories.values()],
            "hist_lens": [len(cat.get("ns_hist", []))
                          for cat in categories.values()],
        })
    return structure


def main(argv):
    if len(argv) != 2:
        print("usage: check_hostprof_invariance.py RELIEF_BENCH",
              file=sys.stderr)
        return 1
    bench = argv[1]
    if not os.access(bench, os.X_OK):
        print("error: %s is not executable" % bench, file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory() as out_dir:
        jobs1 = bench_structure(bench, 1, out_dir)
        jobs4 = bench_structure(bench, 4, out_dir)
    if jobs1 != jobs4:
        print("hostprof structure differs between --jobs 1 and "
              "--jobs 4:", file=sys.stderr)
        print("--jobs 1: %s" % json.dumps(jobs1, indent=2),
              file=sys.stderr)
        print("--jobs 4: %s" % json.dumps(jobs4, indent=2),
              file=sys.stderr)
        return 1
    print("hostprof structure is jobs-invariant "
          "(%d cells)" % len(jobs1["runs"]))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
