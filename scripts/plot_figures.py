#!/usr/bin/env python3
"""Plot the exported CSV tables as grouped bar charts.

Counterpart to the original artifact's plot_*.py scripts: after

    scripts/run_all_experiments.sh build results

run

    scripts/plot_figures.py results/csv results/plots

to turn every exported table whose rows are mixes and whose columns are
policy series into a PDF bar chart. Requires matplotlib.
"""

import csv
import pathlib
import sys


def load_table(path):
    """Return (title, header, rows) from one exported CSV."""
    title = path.stem.replace("_", " ")
    with open(path, newline="") as handle:
        lines = [line for line in handle if not line.startswith("#")]
    reader = csv.reader(lines)
    table = list(reader)
    if len(table) < 2:
        return None
    return title, table[0], table[1:]


def numeric_rows(header, rows):
    """Keep rows whose value cells all parse as floats."""
    out = []
    for row in rows:
        if len(row) != len(header):
            continue
        try:
            values = [float(cell) for cell in row[1:]]
        except ValueError:
            continue
        out.append((row[0], values))
    return out


def plot_table(title, header, rows, out_path, plt):
    data = numeric_rows(header, rows)
    if not data:
        return False
    labels = [label for label, _ in data]
    series_names = header[1:]
    num_series = len(series_names)
    width = 0.8 / max(num_series, 1)

    fig, ax = plt.subplots(figsize=(max(6, len(labels) * 0.9), 3.5))
    for s, name in enumerate(series_names):
        xs = [i + s * width for i in range(len(labels))]
        ys = [values[s] for _, values in data]
        ax.bar(xs, ys, width=width, label=name)
    ax.set_xticks([i + 0.4 - width / 2 for i in range(len(labels))])
    ax.set_xticklabels(labels, rotation=45, ha="right", fontsize=8)
    ax.set_title(title, fontsize=9)
    ax.legend(fontsize=6, ncol=min(num_series, 4))
    fig.tight_layout()
    fig.savefig(out_path)
    plt.close(fig)
    return True


def main():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("plot_figures.py needs matplotlib (pip install matplotlib)")

    csv_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results/csv")
    out_dir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "results/plots")
    out_dir.mkdir(parents=True, exist_ok=True)

    plotted = 0
    for path in sorted(csv_dir.glob("*.csv")):
        loaded = load_table(path)
        if loaded is None:
            continue
        title, header, rows = loaded
        if plot_table(title, header, rows, out_dir / (path.stem + ".pdf"), plt):
            plotted += 1
    print(f"wrote {plotted} plots to {out_dir}")


if __name__ == "__main__":
    main()
