#!/usr/bin/env bash
# Run the relief_bench harness, validate the BENCH JSON it writes, and
# record a Perfetto trace (spans + counters + dependency-edge flow
# arrows) of a representative run alongside it.
#
# Usage: scripts/run_bench.sh [--smoke] [--jobs N] [build-dir] [out-dir]
#
# --smoke runs the tiny CI matrix (one mix, two policies, 5 ms) so the
# whole job stays under a minute; without it the full default matrix
# runs. --jobs N executes the matrix points on N worker threads
# (results are identical for any N; see docs/performance.md). Outputs
# land in out-dir (default bench-results/):
#   BENCH_relief.json     relief-bench-v1 document (schema-checked)
#   trace_CDL.json        Chrome/Perfetto trace of a CDL run
#   PRESSURE_relief.json  relief-pressure-v1 attribution ledger dump
#                         of the traced run (schema-checked)
set -euo pipefail

SMOKE=0
JOBS=1
while :; do
    case "${1:-}" in
        --smoke) SMOKE=1; shift ;;
        --jobs) JOBS="${2:?--jobs needs a value}"; shift 2 ;;
        *) break ;;
    esac
done

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

for tool in relief_bench relief_sim; do
    if [ ! -x "$BUILD_DIR/tools/$tool" ]; then
        echo "error: $BUILD_DIR/tools/$tool not found; build first:" >&2
        echo "  cmake -B $BUILD_DIR && cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
done

mkdir -p "$OUT_DIR"
BENCH_JSON="$OUT_DIR/BENCH_relief.json"

if [ "$SMOKE" = 1 ]; then
    "$BUILD_DIR/tools/relief_bench" --smoke --jobs "$JOBS" \
        --out "$BENCH_JSON"
else
    "$BUILD_DIR/tools/relief_bench" --jobs "$JOBS" --out "$BENCH_JSON"
fi

python3 "$SCRIPT_DIR/check_bench_schema.py" "$BENCH_JSON"

# A representative trace for the artifact: CDL under RELIEF exercises
# forwarding, so the flow arrows carry all three edge categories. The
# same run dumps the memory-pressure attribution ledger, with the
# per-bank utilization and queue-depth counter tracks in the trace.
"$BUILD_DIR/tools/relief_sim" --mix CDL --policy RELIEF \
    --banked-memory --pressure-tracks \
    --trace "$OUT_DIR/trace_CDL.json" \
    --pressure-report "$OUT_DIR/PRESSURE_relief.json" \
    > "$OUT_DIR/trace_CDL.log"

python3 "$SCRIPT_DIR/check_bench_schema.py" "$OUT_DIR/PRESSURE_relief.json"

echo "bench outputs in $OUT_DIR/ (BENCH_relief.json," \
     "PRESSURE_relief.json schema-valid)"
