#!/usr/bin/env bash
# Run the relief_bench harness, validate the BENCH JSON it writes, and
# record a Perfetto trace (spans + counters + dependency-edge flow
# arrows) of a representative run alongside it.
#
# Usage: scripts/run_bench.sh [--smoke] [--jobs N] [--kernels]
#                              [build-dir] [out-dir]
#
# --smoke runs the tiny CI matrix (one mix, two policies, 5 ms) so the
# whole job stays under a minute; without it the full default matrix
# runs. --jobs N executes the matrix points on N worker threads
# (results are identical for any N; see docs/performance.md).
# --kernels additionally runs the SIMD kernel microbenchmark
# (tools/relief_kernel_bench) and schema-checks + self-diffs its
# document. Outputs land in out-dir (default bench-results/):
#   BENCH_relief.json     relief-bench-v1 document (schema-checked),
#                         with per-cell host-time attribution embedded
#   trace_CDL.json        Chrome/Perfetto trace of a CDL run
#   PRESSURE_relief.json  relief-pressure-v1 attribution ledger dump
#                         of the traced run (schema-checked)
#   HOSTPROF_CDL.json     relief-hostprof-v1 host-time attribution of
#                         the traced run (schema-checked)
#   KERNELS_relief.json   relief-kernels-v1 scalar-vs-SIMD kernel
#                         throughput (--kernels only, schema-checked)
#
# Every check runs un-piped so its exit status propagates under
# `set -e`; in particular a relief_compare breach (exit 2) or a schema
# violation (exit 1) fails this script with the same code.
set -euo pipefail

SMOKE=0
JOBS=1
KERNELS=0
while :; do
    case "${1:-}" in
        --smoke) SMOKE=1; shift ;;
        --jobs) JOBS="${2:?--jobs needs a value}"; shift 2 ;;
        --kernels) KERNELS=1; shift ;;
        *) break ;;
    esac
done

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

for tool in relief_bench relief_sim relief_compare; do
    if [ ! -x "$BUILD_DIR/tools/$tool" ]; then
        echo "error: $BUILD_DIR/tools/$tool not found; build first:" >&2
        echo "  cmake -B $BUILD_DIR && cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
done

CHECKER="$SCRIPT_DIR/check_bench_schema.py"
if [ ! -f "$CHECKER" ]; then
    echo "error: schema checker $CHECKER is missing; refusing to" >&2
    echo "emit unvalidated artifacts" >&2
    exit 1
fi

mkdir -p "$OUT_DIR"
BENCH_JSON="$OUT_DIR/BENCH_relief.json"

if [ "$SMOKE" = 1 ]; then
    "$BUILD_DIR/tools/relief_bench" --smoke --jobs "$JOBS" \
        --host-profile --out "$BENCH_JSON"
else
    "$BUILD_DIR/tools/relief_bench" --jobs "$JOBS" --host-profile \
        --out "$BENCH_JSON"
fi

python3 "$CHECKER" "$BENCH_JSON"

# Self-consistency gate: a document must never breach against itself.
# A non-zero exit (relief_compare exits 2 on breaches) aborts the run.
"$BUILD_DIR/tools/relief_compare" --diff "$BENCH_JSON" "$BENCH_JSON" \
    > /dev/null

# A representative trace for the artifact: CDL under RELIEF exercises
# forwarding, so the flow arrows carry all three edge categories. The
# same run dumps the memory-pressure attribution ledger, with the
# per-bank utilization and queue-depth counter tracks in the trace.
"$BUILD_DIR/tools/relief_sim" --mix CDL --policy RELIEF \
    --banked-memory --pressure-tracks \
    --trace "$OUT_DIR/trace_CDL.json" \
    --pressure-report "$OUT_DIR/PRESSURE_relief.json" \
    --host-profile "$OUT_DIR/HOSTPROF_CDL.json" \
    > "$OUT_DIR/trace_CDL.log"

python3 "$CHECKER" "$OUT_DIR/PRESSURE_relief.json"
python3 "$CHECKER" "$OUT_DIR/HOSTPROF_CDL.json"

if [ "$KERNELS" = 1 ]; then
    KERNELS_JSON="$OUT_DIR/KERNELS_relief.json"
    if [ ! -x "$BUILD_DIR/tools/relief_kernel_bench" ]; then
        echo "error: $BUILD_DIR/tools/relief_kernel_bench not found" >&2
        exit 1
    fi
    if [ "$SMOKE" = 1 ]; then
        "$BUILD_DIR/tools/relief_kernel_bench" --smoke \
            --out "$KERNELS_JSON"
    else
        "$BUILD_DIR/tools/relief_kernel_bench" --out "$KERNELS_JSON"
    fi
    python3 "$CHECKER" "$KERNELS_JSON"
    "$BUILD_DIR/tools/relief_compare" --diff "$KERNELS_JSON" \
        "$KERNELS_JSON" > /dev/null
fi

echo "bench outputs in $OUT_DIR/ (BENCH_relief.json," \
     "PRESSURE_relief.json, HOSTPROF_CDL.json schema-valid)"
