#!/usr/bin/env bash
# Run every experiment bench, teeing console output into results/ and
# exporting each table as CSV (via RELIEF_CSV_DIR) for plotting.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
RESULTS_DIR="${2:-results}"

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "error: $BUILD_DIR/bench not found; build first:" >&2
    echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
    exit 1
fi

mkdir -p "$RESULTS_DIR/csv"
export RELIEF_CSV_DIR="$RESULTS_DIR/csv"

# `set -o pipefail` above makes the tee pipelines below fail the
# script when a bench itself fails, not just when tee does.
ran=0
for bench in "$BUILD_DIR"/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    echo "=== $name ==="
    "$bench" | tee "$RESULTS_DIR/$name.txt"
    echo
    ran=$((ran + 1))
done

if [ "$ran" = 0 ]; then
    echo "error: no executable benches in $BUILD_DIR/bench;" >&2
    echo "build first: cmake -B $BUILD_DIR && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

echo "console outputs in $RESULTS_DIR/, CSV exports in $RESULTS_DIR/csv/"
